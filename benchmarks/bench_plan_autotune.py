"""Plan optimization & autotuning: measured wall-clock gain, same bits.

Two claims are on trial:

* the **pass pipeline** (stateless stage fusion + materialization
  elimination + loop-invariant hoisting) alone must buy at least
  ``--min-speedup`` (default 1.3x) serial-executor FPS over the
  unoptimized plan, while every output frame stays bitwise identical;
* the **autotuner**'s winner must be at least as fast as the default
  configuration — by construction the incumbent is always a candidate,
  and this bench re-verifies the invariant empirically on the
  measured candidate table.

Runs two ways:

* under pytest (like every other bench): ``pytest
  benchmarks/bench_plan_autotune.py``;
* as a script with a CI-friendly quick mode::

      PYTHONPATH=src python benchmarks/bench_plan_autotune.py --quick \
          --json-out BENCH_autotune.json

``--json-out`` writes the rows machine-readably for CI artifacts.  The
autotuner uses a throwaway cache directory so the bench never reads or
pollutes the user's plan cache.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.autotune import PlanAutotuner
from repro.session import FusionConfig, FusionSession
from repro.types import FrameShape
from repro.video.scene import SyntheticScene


def render_pairs(size: FrameShape, frames: int,
                 seed: int = 2016) -> List[Tuple[np.ndarray, np.ndarray]]:
    """A deterministic pre-rendered clip: rendering cost must not
    contaminate the executor comparison."""
    scene = SyntheticScene(width=size.width, height=size.height,
                           seed=seed)
    return [(scene.render_visible(i / 25.0), scene.render_thermal(i / 25.0))
            for i in range(frames)]


def measure(config: FusionConfig, pairs) -> Dict:
    """Wall-clock FPS (and output frames) of one config on the clip."""
    with FusionSession(config) as session:
        start = time.perf_counter()
        frames = [r.frame.pixels for r in session.stream(list(pairs))]
        elapsed = time.perf_counter() - start
    return {"fps": len(frames) / elapsed if elapsed > 0 else 0.0,
            "elapsed_s": elapsed, "frames": frames}


def bench_passes(size: FrameShape, frames: int,
                 levels: int) -> Tuple[str, Dict]:
    pairs = render_pairs(size, frames)
    base_cfg = FusionConfig(engine="neon", executor="serial",
                            fusion_shape=size, levels=levels,
                            quality_metrics=False, keep_records=False)
    plain = measure(base_cfg, pairs)
    tuned = measure(base_cfg.with_overrides(optimize=True), pairs)
    parity = all(np.array_equal(a, b)
                 for a, b in zip(plain["frames"], tuned["frames"]))
    speedup = (tuned["fps"] / plain["fps"]) if plain["fps"] > 0 else 0.0
    text = "\n".join([
        f"Optimization passes, serial executor ({frames} frames @ "
        f"{size}, levels={levels}):",
        f"  unoptimized : {plain['fps']:8.2f} fps",
        f"  optimized   : {tuned['fps']:8.2f} fps  "
        f"({speedup:.2f}x, bitwise parity: "
        f"{'yes' if parity else 'NO'})",
    ])
    row = {"unoptimized_fps": plain["fps"], "optimized_fps": tuned["fps"],
           "speedup": speedup, "parity": parity}
    return text, row


def bench_autotune(size: FrameShape, frames: int,
                   levels: int) -> Tuple[str, Dict]:
    config = FusionConfig(engine="neon", executor="serial",
                          fusion_shape=size, levels=levels,
                          quality_metrics=False, keep_records=False)
    with tempfile.TemporaryDirectory() as cache_dir:
        tuner = PlanAutotuner(cache_dir=cache_dir,
                              calibration_frames=frames)
        decision = tuner.decide(config)
    rows = [{"overrides": dict(r["overrides"]), "fps": r["fps"]}
            for r in decision.candidates]
    default_fps = next(r["fps"] for r in rows if not r["overrides"])
    lines = [f"Autotuner candidate table ({frames} calibration frames @ "
             f"{size}, levels={levels}):"]
    for row in rows:
        ov = ", ".join(f"{k}={v!r}" for k, v
                       in sorted(row["overrides"].items()))
        marker = " <- winner" if row["overrides"] == decision.overrides \
            else ""
        lines.append(f"  {row['fps']:8.2f} fps  "
                     f"{ov or 'default'}{marker}")
    lines.append(f"  winner vs default: "
                 f"{decision.fps / default_fps:.2f}x")
    payload = {"winner": dict(decision.overrides),
               "winner_fps": decision.fps,
               "default_fps": default_fps,
               "candidates": rows}
    return "\n".join(lines), payload


def test_plan_autotune(report):
    """Pytest entry: a quick pass over both claims."""
    size = FrameShape(40, 32)
    text_p, passes = bench_passes(size, frames=6, levels=2)
    text_t, tune = bench_autotune(size, frames=3, levels=2)
    report(text_p + "\n\n" + text_t)
    assert passes["parity"], "optimized plan changed output bits"
    assert passes["speedup"] > 1.0
    assert tune["winner_fps"] >= tune["default_fps"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=24,
                        help="clip length for the pass comparison")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 10 frames")
    parser.add_argument("--size", default="88x72",
                        help="fusion geometry, e.g. 88x72")
    parser.add_argument("--levels", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="fail unless optimized serial fps >= this "
                             "multiple of unoptimized (default 1.3)")
    parser.add_argument("--json-out", default=None,
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)

    frames = 10 if args.quick else args.frames
    width, height = (int(v) for v in args.size.lower().split("x"))
    size = FrameShape(width, height)

    text_p, passes = bench_passes(size, frames, args.levels)
    print(text_p)
    text_t, tune = bench_autotune(size, max(frames // 2, 2), args.levels)
    print(text_t)

    if args.json_out:
        payload = {"frames": frames, "size": str(size),
                   "levels": args.levels, "passes": passes,
                   "autotune": tune}
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.json_out}")

    failed = False
    if not passes["parity"]:
        print("FAIL: optimized plan is not bitwise-identical to the "
              "unoptimized plan", file=sys.stderr)
        failed = True
    if passes["speedup"] < args.min_speedup:
        print(f"FAIL: passes bought only {passes['speedup']:.2f}x "
              f"serial fps (< {args.min_speedup:.2f}x)", file=sys.stderr)
        failed = True
    if tune["winner_fps"] < tune["default_fps"]:
        print(f"FAIL: autotuned plan ({tune['winner_fps']:.2f} fps) is "
              f"slower than the default ({tune['default_fps']:.2f} fps)",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
