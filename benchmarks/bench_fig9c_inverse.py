"""Fig. 9(c): inverse DT-CWT time on ARM / NEON / FPGA vs frame size."""

from repro.dtcwt import Dtcwt2D
from repro.system.runtime import format_rows, inverse_stage_sweep
from repro.types import FrameShape

from conftest import format_line

FULL = FrameShape(88, 72)


def test_fig9c_table(engines, report):
    rows = inverse_stage_sweep(levels=3, frames=10)
    table = format_rows(rows, "seconds / 10 frames",
                        "Fig. 9(c) - Performance Comparison of Inverse DT-CWT")

    arm, neon, fpga = engines["arm"], engines["neon"], engines["fpga"]
    fpga_gain = 1 - fpga.inverse_stage_time(FULL) / arm.inverse_stage_time(FULL)
    neon_gain = 1 - neon.inverse_stage_time(FULL) / arm.inverse_stage_time(FULL)
    at35 = (engines["fpga"].inverse_stage_time(FrameShape(35, 35))
            > engines["neon"].inverse_stage_time(FrameShape(35, 35)))

    lines = [table, "", "Anchors:"]
    lines.append(format_line("FPGA enhancement @88x72", "60.6 %",
                             f"{fpga_gain * 100:.1f} %"))
    lines.append(format_line("NEON enhancement @88x72", "16 %",
                             f"{neon_gain * 100:.1f} %"))
    lines.append(format_line("FPGA worse than NEON at 35x35", "yes",
                             "yes" if at35 else "no"))
    report("\n".join(lines))

    assert abs(fpga_gain - 0.606) < 0.03
    assert abs(neon_gain - 0.16) < 0.02
    assert at35


def test_inverse_transform_kernel(benchmark, frame_pair_88x72):
    visible, _ = frame_pair_88x72
    transform = Dtcwt2D(levels=3)
    pyramid = transform.forward(visible)
    image = benchmark(transform.inverse, pyramid)
    assert image.shape == visible.shape
