"""Live-ops bench: stream churn throughput and overload shed rate.

The live serving layer's two operational claims, measured:

* **churn** — a ``live=True`` :class:`repro.serve.FusionService` can
  attach and retire a procession of short-lived streams while running,
  with the lease/admission/ledger accounting balancing exactly and the
  per-stream state reclaimed (:meth:`reap`), so the service neither
  leaks nor pauses between tenants.  The score is retired streams per
  wall second.
* **shedding** — under synthetic overload (a deliberately starved
  admission budget and a single worker), a bounded hysteretic
  :class:`repro.serve.ops.ShedPolicy` drops whole frames of the
  lowest priority class only: the critical tenant keeps every frame,
  the background tenants degrade, and the frame ledger still
  reconciles (``offered == finalized + shed + errored``).

Runs two ways:

* under pytest (like every other bench): ``pytest
  benchmarks/bench_service_ops.py``;
* as a script with a CI-friendly quick mode::

      PYTHONPATH=src python benchmarks/bench_service_ops.py --quick
      PYTHONPATH=src python benchmarks/bench_service_ops.py \
          --streams 200 --json-out BENCH_ops.json

``--json-out`` writes the machine-readable rows for CI artifacts (the
``BENCH_ops.json`` upload).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Tuple

from repro.serve import FusionService, ShedPolicy, StreamSLO
from repro.session import FusionConfig, SyntheticSource
from repro.types import FrameShape

TINY = FrameShape(32, 24)

#: churn tenants ride one CPU pool; the point is lifecycle overhead,
#: not kernel throughput
CHURN_POOL = {"neon": 1, "arm": 1}


def stream_config(**overrides) -> FusionConfig:
    base = dict(engine="neon", fusion_shape=TINY, levels=2, seed=5,
                quality_metrics=False, keep_records=False)
    base.update(overrides)
    return FusionConfig(**base)


def run_churn(total_streams: int, wave: int = 8,
              frames: int = 3) -> Tuple[Dict, "FusionService"]:
    """Attach/retire ``total_streams`` short-lived tenants on a live
    service, reaping as they complete; returns the measured rows."""
    service = FusionService(pool=CHURN_POOL, max_in_flight=8,
                            stream_queue_depth=4, live=True,
                            event_capacity=256)
    service.start()
    reaped = 0
    attached = 0
    t0 = time.perf_counter()
    try:
        while reaped < total_streams:
            while attached < total_streams \
                    and len(service.stream_names()) < wave:
                engine = "neon" if attached % 2 == 0 else "arm"
                service.attach(f"cam-{attached}",
                               config=stream_config(engine=engine),
                               source=SyntheticSource(seed=attached % 17),
                               frames=frames)
                attached += 1
            got = service.reap()
            reaped += len(got)
            if not got:
                time.sleep(0.001)
        wall = time.perf_counter() - t0
        report = service.wait()
    finally:
        service.close()
    ledger = report.ledger
    pool = report.pool
    return {
        "streams": total_streams,
        "frames_per_stream": frames,
        "wall_s": wall,
        "streams_per_s": total_streams / wall if wall > 0 else 0.0,
        "frames_total": ledger["totals"]["finalized"],
        "ledger_balanced": ledger["balanced"],
        "ledger_totals": dict(ledger["totals"]),
        "leases_balanced": pool["granted"] == pool["released"],
        "retired_streams": report.admission.get("retired_streams", 0),
    }, service


def run_overload(frames: int = 24) -> Dict:
    """One critical tenant + two background tenants against a starved
    budget: only the background class sheds, the ledger reconciles.

    Shedding targets the lowest priority class *present*, so the
    background tenants carry more frames than the critical one — the
    critical stream completes while the class that shields it is
    still attached (shed frames consume the background sources
    faster, so equal budgets would strand the critical tenant alone
    under overload, where its class becomes the lowest present).
    """
    service = FusionService(
        pool={"neon": 1}, max_in_flight=2, stream_queue_depth=1,
        workers=1,
        shedding=ShedPolicy(high_watermark=1.0, low_watermark=0.0,
                            max_shed_fraction=0.8))
    service.add_stream("critical", config=stream_config(),
                       source=SyntheticSource(seed=1),
                       frames=max(2, frames // 2),
                       slo=StreamSLO(priority_class="critical"))
    for index in range(2):
        service.add_stream(f"bg-{index}", config=stream_config(),
                           source=SyntheticSource(seed=2 + index),
                           frames=frames,
                           slo=StreamSLO(priority_class="background"))
    report = service.serve()
    totals = report.ledger["totals"]
    shed_by_stream = report.shedding.get("shed_by_stream", {})
    offered = totals["offered"]
    return {
        "frames_per_stream": frames,
        "offered": offered,
        "finalized": totals["finalized"],
        "shed": totals["shed"],
        "shed_rate": totals["shed"] / offered if offered else 0.0,
        "critical_shed": report.streams["critical"].throughput["shed"],
        "shed_engagements": report.shedding.get("engagements", 0),
        "ledger_balanced": report.ledger["balanced"],
        "shed_by_stream": dict(shed_by_stream),
    }


def run_bench(total_streams: int) -> Tuple[str, Dict]:
    churn, _ = run_churn(total_streams)
    overload = run_overload()
    lines = [
        f"Live-ops: churn of {churn['streams']} short-lived streams "
        f"({churn['frames_per_stream']} frames each) on {CHURN_POOL}:",
        f"  churn throughput : {churn['streams_per_s']:8.1f} streams/s "
        f"({churn['wall_s']:.2f}s wall, "
        f"{churn['frames_total']} frames fused)",
        f"  accounting       : ledger "
        f"{'balanced' if churn['ledger_balanced'] else 'UNBALANCED'}, "
        f"leases "
        f"{'balanced' if churn['leases_balanced'] else 'UNBALANCED'}",
        "",
        f"Overload shedding (budget 2, 1 worker, 3 tenants x "
        f"{overload['frames_per_stream']} frames):",
        f"  shed rate        : {overload['shed_rate']:.1%} "
        f"({overload['shed']} of {overload['offered']} offered, "
        f"{overload['shed_engagements']} engagement(s))",
        f"  critical tenant  : {overload['critical_shed']} frame(s) shed "
        f"(class never degrades below background)",
        f"  ledger           : "
        f"{'balanced' if overload['ledger_balanced'] else 'UNBALANCED'}",
    ]
    payload = {"churn": churn, "overload": overload}
    return "\n".join(lines), payload


def test_service_ops(report):
    """Pytest entry: a small churn + the overload scenario, gated on
    the accounting invariants rather than machine-dependent rates."""
    text, payload = run_bench(total_streams=24)
    report(text)
    assert payload["churn"]["ledger_balanced"]
    assert payload["churn"]["leases_balanced"]
    assert payload["churn"]["retired_streams"] >= 24
    assert payload["overload"]["ledger_balanced"]
    assert payload["overload"]["critical_shed"] == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: a small churn run")
    parser.add_argument("--streams", type=int, default=200,
                        help="churned streams (default 200; --quick "
                             "forces 40)")
    parser.add_argument("--json-out", default=None,
                        help="write the machine-readable rows as JSON")
    args = parser.parse_args(argv)

    total = 40 if args.quick else args.streams
    text, payload = run_bench(total)
    print(text)

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.json_out}")

    failures = []
    if not payload["churn"]["ledger_balanced"]:
        failures.append("churn ledger unbalanced")
    if not payload["churn"]["leases_balanced"]:
        failures.append("churn leases unbalanced")
    if not payload["overload"]["ledger_balanced"]:
        failures.append("overload ledger unbalanced")
    if payload["overload"]["critical_shed"]:
        failures.append("critical tenant shed frames")
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("OK: accounting balanced, class isolation held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
