"""Temporal fusion and registration extensions (production features).

Quantifies two refinements a deployed version of the paper's system
needs: selection-flicker suppression over time, and source alignment
before fusion.
"""

import numpy as np

from repro.core.fusion import fuse_images
from repro.core.registration import DtcwtRegistration, phase_correlation
from repro.core.video_fusion import TemporalFusion, selection_flicker
from repro.video.scene import SyntheticScene

from conftest import format_line


def _noisy_sequence(frames=6, sigma=2.0):
    scene = SyntheticScene(width=96, height=80, seed=4)
    visible = scene.render_visible(0.0)
    thermal = scene.render_thermal(0.0)
    rng = np.random.default_rng(11)
    vis = [visible + rng.normal(0, sigma, visible.shape) for _ in range(frames)]
    th = [thermal + rng.normal(0, sigma, thermal.shape) for _ in range(frames)]
    return vis, th


def test_flicker_suppression(report):
    vis, th = _noisy_sequence()
    independent = selection_flicker(lambda a, b: fuse_images(a, b), vis, th)
    rows = ["Temporal fusion: output flicker on a noisy static scene",
            f"  {'smoothing':>10} {'flicker':>9} {'reduction':>10}"]
    best = independent
    for smoothing in (0.0, 0.5, 0.8):
        fuser = TemporalFusion(smoothing=smoothing)
        flicker = selection_flicker(fuser.fuse, vis, th)
        rows.append(f"  {smoothing:>10.1f} {flicker:>9.4f} "
                    f"{100 * (1 - flicker / independent):>9.1f}%")
        best = min(best, flicker)
    rows.insert(1, f"  independent (paper): {independent:.4f}")
    report("\n".join(rows))
    assert best < independent


def test_registration_accuracy(report):
    scene = SyntheticScene(width=96, height=80, seed=2)
    thermal = scene.render_thermal(0.0)
    estimator = DtcwtRegistration(levels=4, max_shift=8)

    exact = 0
    cases = [(3, -5), (2, 4), (-1, 7), (0, 0), (6, 6), (-4, -2)]
    for sy, sx in cases:
        moved = np.roll(np.roll(thermal, sy, axis=0), sx, axis=1)
        result = estimator.estimate(thermal, moved)
        if (result.dy, result.dx) == (-sy, -sx):
            exact += 1
    report(format_line("DT-CWT registration exact recoveries",
                       "(extension)", f"{exact}/{len(cases)} shifts"))
    assert exact == len(cases)


def test_phase_correlation_kernel(benchmark):
    scene = SyntheticScene(width=96, height=80, seed=2)
    thermal = scene.render_thermal(0.0)
    moved = np.roll(thermal, 3, axis=0)
    result = benchmark(phase_correlation, thermal, moved)
    assert round(result.dy) == -3


def test_temporal_fusion_kernel(benchmark):
    vis, th = _noisy_sequence(frames=2)
    fuser = TemporalFusion(smoothing=0.8)
    fuser.fuse(vis[0], th[0])  # warm state
    fused = benchmark(fuser.fuse, vis[1], th[1])
    assert fused.shape == vis[1].shape
