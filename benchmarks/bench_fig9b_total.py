"""Fig. 9(b): total time (decompose + fuse + reconstruct, 10 frames)."""

from repro.core.fusion import ImageFusion
from repro.system.runtime import find_crossover, format_rows, total_time_sweep
from repro.types import FrameShape

from conftest import format_line

FULL = FrameShape(88, 72)


def test_fig9b_table(engines, report):
    rows = total_time_sweep(levels=3, frames=10)
    table = format_rows(rows, "seconds / 10 frames",
                        "Fig. 9(b) - Comparison of Total Time Taken")

    arm, neon, fpga = engines["arm"], engines["neon"], engines["fpga"]
    fpga_gain = 1 - (fpga.frame_time(FULL).total_s
                     / arm.frame_time(FULL).total_s)
    neon_gain = 1 - (neon.frame_time(FULL).total_s
                     / arm.frame_time(FULL).total_s)
    crossover = find_crossover(rows, "fpga", "neon")

    lines = [table, "", "Anchors:"]
    lines.append(format_line("FPGA enhancement @88x72", "48.1 %",
                             f"{fpga_gain * 100:.1f} %"))
    lines.append(format_line("NEON enhancement @88x72", "8 %",
                             f"{neon_gain * 100:.1f} %"))
    lines.append(format_line("first paper size where FPGA beats NEON",
                             "beyond 40x40", str(crossover)))
    report("\n".join(lines))

    assert 0.44 < fpga_gain < 0.54
    assert 0.06 < neon_gain < 0.13
    assert crossover in (FrameShape(40, 40), FrameShape(64, 48))


def test_full_fusion_kernel(benchmark, frame_pair_88x72):
    """Wall-clock of one complete fuse (two forwards + rule + inverse)."""
    visible, thermal = frame_pair_88x72
    fusion = ImageFusion(levels=3)
    result = benchmark(fusion.fuse, visible, thermal)
    assert result.fused.shape == visible.shape
