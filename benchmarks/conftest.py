"""Shared fixtures for the benchmark harness.

Every ``bench_*`` file regenerates one of the paper's tables or figures
and prints a paper-vs-measured comparison through the ``report``
fixture (visible even under pytest's output capture), in addition to
timing a representative kernel with pytest-benchmark.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.arm import ArmEngine
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine
from repro.video.scene import SyntheticScene


@pytest.fixture
def report(capsys):
    """Print a reproduction table through pytest's capture."""
    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)
    return _report


@pytest.fixture(scope="session")
def engines():
    return {"arm": ArmEngine(), "neon": NeonEngine(), "fpga": FpgaEngine()}


@pytest.fixture(scope="session")
def frame_pair_88x72():
    scene = SyntheticScene(width=176, height=144, seed=7)
    vis_full = scene.render_visible(0.0)
    th_full = scene.render_thermal(0.0)
    rows = np.linspace(0, 143, 72).round().astype(int)
    cols = np.linspace(0, 175, 88).round().astype(int)
    return vis_full[np.ix_(rows, cols)], th_full[np.ix_(rows, cols)]


def format_line(label: str, paper: str, measured: str, verdict: str = "") -> str:
    return f"  {label:<46} paper: {paper:>12}   measured: {measured:>12} {verdict}"
