"""Decomposition-level sweep (Section VII: 'the decomposition level of
the CT-DWT was varied').

Wavelet level count is the paper's second workload axis: each extra
level adds work on a frame a quarter the size, so deeper transforms
shift the per-level balance toward the NEON side of the crossover even
when the input frame is large.  This bench sweeps levels 1..5 at the
full frame and reports each engine's time, energy, and the per-level
adaptive plan.
"""

from repro.core.adaptive import PerLevelScheduler
from repro.hw.power import PowerModel
from repro.types import FrameShape

from conftest import format_line

FULL = FrameShape(88, 72)


def test_levels_sweep(engines, report):
    power = PowerModel()
    lines = ["Decomposition-level sweep @88x72 (ms/frame | mJ/frame):",
             f"  {'levels':>7} {'ARM':>15} {'NEON':>15} {'FPGA':>15} "
             f"{'winner':>7}"]
    winners = []
    for levels in range(1, 6):
        cells = {}
        for name, engine in engines.items():
            seconds = engine.frame_time(FULL, levels).total_s
            mj = seconds * power.power_w(engine.power_mode) * 1e3
            cells[name] = (seconds, mj)
        winner = min(cells, key=lambda n: cells[n][0])
        winners.append(winner)
        row = " ".join(f"{cells[n][0] * 1e3:6.1f}|{cells[n][1]:7.2f}"
                       for n in ("arm", "neon", "fpga"))
        lines.append(f"  {levels:>7} {row} {winner:>7}")
    report("\n".join(lines))

    # at the full frame the FPGA stays the right choice at every depth
    assert set(winners) == {"fpga"}


def test_deeper_levels_grow_sublinearly(engines, report):
    """Level l works on 1/4^{l-1} of the pixels: adding depth costs
    geometrically less — the shrinking-workload effect of Fig. 1."""
    arm = engines["arm"]
    increments = []
    previous = arm.frame_time(FULL, 1).total_s
    for levels in range(2, 6):
        current = arm.frame_time(FULL, levels).total_s
        increments.append(current - previous)
        previous = current
    report("ARM cost increments per added level (ms): "
           + ", ".join(f"{v * 1e3:.2f}" for v in increments))
    assert all(b < a for a, b in zip(increments, increments[1:]))


def test_per_level_plan_tracks_depth(report):
    """Deep levels flip to NEON once their sub-frame falls below the
    crossover — the finer-grained version of the paper's adaptive idea."""
    planner = PerLevelScheduler()
    lines = ["Per-level plans vs depth @88x72:"]
    neon_seen = False
    for levels in range(1, 6):
        plan = planner.plan(FULL, levels=levels)
        lines.append(f"  L={levels}: forward "
                     f"{'/'.join(plan.forward_assignment)}")
        if "neon" in plan.forward_assignment:
            neon_seen = True
    report("\n".join(lines))
    assert neon_seen

    deep = planner.plan(FULL, levels=5)
    assert deep.forward_assignment[0] == "fpga"
    # the deepest level's sub-frame (6x5 per tree) sits far below the
    # crossover: anything but the FPGA (NEON, or ARM when the all-scalar
    # epilogue makes them tie) is the right call
    assert deep.forward_assignment[-1] != "fpga"


def test_frame_time_kernel(benchmark, engines):
    fpga = engines["fpga"]
    breakdown = benchmark(fpga.frame_time, FULL, 5)
    assert breakdown.total_s > 0
