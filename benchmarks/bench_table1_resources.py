"""Table I: implementation complexity of the wavelet engine.

The component-level resource model, configured as the paper's 12-tap
engine, must land on the published utilization of the xc7z020.
"""

from repro.hw.resources import (
    PAPER_TABLE1,
    EngineConfig,
    estimate_resources,
)

from conftest import format_line


def test_table1(report):
    estimate = estimate_resources(EngineConfig())
    util = estimate.utilization("xc7z020clg484-1")

    measured = {
        "registers": (estimate.registers, util["registers"]),
        "luts": (estimate.luts, util["luts"]),
        "slices": (estimate.slices, util["slices"]),
        "bufg": (estimate.bufg, util["bufg"]),
    }
    lines = ["Table I - Implementation Complexity of Wavelet Engine "
             "(xc7z020clg484-1)",
             "=" * 70,
             f"  {'resource':<12} {'paper':>14} {'model':>14} "
             f"{'paper %':>9} {'model %':>9}"]
    for name in ("registers", "luts", "slices", "bufg"):
        paper_count, paper_pct = PAPER_TABLE1[name]
        model_count, model_pct = measured[name]
        lines.append(f"  {name:<12} {paper_count:>14} {model_count:>14} "
                     f"{paper_pct:>8}% {model_pct:>8.1f}%")
    lines.append("")
    lines.append(format_line("BRAM for the double-buffered I/O",
                             "4096 x 32-bit x 2",
                             f"{estimate.bram_kbit:.0f} kbit"))
    report("\n".join(lines))

    for name in ("registers", "luts", "slices"):
        paper_count, _ = PAPER_TABLE1[name]
        model_count, _ = measured[name]
        assert abs(model_count - paper_count) / paper_count < 0.02
    assert estimate.bufg == PAPER_TABLE1["bufg"][0]
    assert estimate.fits("xc7z020clg484-1")


def test_scaling_story(report):
    """The model's value beyond Table I: it scales with the design."""
    rows = ["Resource scaling (model extrapolation):",
            f"  {'taps':>5} {'registers':>10} {'luts':>8} {'slices':>8} "
            f"{'fits 7z020':>11}"]
    for taps in (8, 12, 16, 20, 24):
        est = estimate_resources(EngineConfig(taps=taps))
        rows.append(f"  {taps:>5} {est.registers:>10} {est.luts:>8} "
                    f"{est.slices:>8} {str(est.fits()):>11}")
    report("\n".join(rows))

    small = estimate_resources(EngineConfig(taps=8))
    large = estimate_resources(EngineConfig(taps=24))
    assert large.slices > small.slices


def test_resource_estimation_kernel(benchmark):
    estimate = benchmark(estimate_resources, EngineConfig())
    assert estimate.registers > 0
