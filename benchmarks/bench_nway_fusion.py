"""N-way fusion throughput: stacked group forward vs separate forwards.

The N-way core's claim is that a frame *group* is already a batch: all
``N`` sources of one group ride a single stacked ``(N, H, W)`` forward
transform (plus vectorized coefficient reduction and one stacked
inverse), amortizing the per-call Python dispatch that separate
per-source forwards pay ``N`` times — without changing one output bit.
This bench fuses a seeded visible+IR+depth triple stream both ways and
compares wall-clock FPS, verifying the bitwise-parity claim on the
side.

Runs two ways:

* under pytest (like every other bench): ``pytest
  benchmarks/bench_nway_fusion.py``;
* as a script with a CI-friendly quick mode that also emits a
  machine-readable summary::

      PYTHONPATH=src python benchmarks/bench_nway_fusion.py --quick
      PYTHONPATH=src python benchmarks/bench_nway_fusion.py \
          --frames 96 --sources 4 --min-speedup 1.5

``--min-speedup`` turns the report into an assertion (exit code 1 when
the stacked path misses the bar).  Like the batch-executor bench the
bar is meaningful on a single core: the speedup is NumPy
vectorization, not concurrency.  ``--json-out`` (default
``BENCH_nway.json``) writes the rows for CI artifact diffing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

from repro.core.fusion import ImageFusion
from repro.types import FrameShape
from repro.video.scene import SyntheticScene

#: modality cycle used to synthesize N co-registered source streams
MODALITIES = ("visible", "thermal", "depth")


def render_groups(frames: int, n_sources: int, size: FrameShape,
                  seed: int = 7) -> List[List[np.ndarray]]:
    """``frames`` co-registered N-frame groups at the fusion geometry."""
    scene = SyntheticScene(width=size.width, height=size.height,
                           seed=seed)
    groups = []
    for index in range(frames):
        t_s = index / 25.0
        groups.append([
            scene.render(MODALITIES[s % len(MODALITIES)], t_s)
            for s in range(n_sources)
        ])
    return groups


def measure(mode: str, groups: List[List[np.ndarray]],
            levels: int) -> Dict:
    """Wall-clock FPS of one strategy over the pre-rendered groups.

    ``separate`` runs one forward per source per group (the naive
    N-way generalization); ``stacked`` rides each group through the
    batch-first path — one ``(N, H, W)`` forward, vectorized
    reduction, one stacked inverse — exactly what the session's plan
    interpreter does per frame.
    """
    fusion = ImageFusion(levels=levels)
    start = time.perf_counter()
    if mode == "separate":
        for group in groups:
            pyramids = [fusion.decompose(frame) for frame in group]
            fusion.reconstruct(fusion.combine_many(pyramids))
    else:
        for group in groups:
            fusion.fuse_batch(*(frame[None] for frame in group))
    elapsed = time.perf_counter() - start
    return {
        "mode": mode,
        "frames": len(groups),
        "elapsed_s": elapsed,
        "fps": len(groups) / elapsed if elapsed > 0 else 0.0,
    }


def check_parity(groups: List[List[np.ndarray]], levels: int) -> bool:
    """The invariant the speedup must not cost: the stacked group path
    is bitwise-identical to separate forwards."""
    fusion = ImageFusion(levels=levels)
    for group in groups[:4]:
        single = fusion.fuse(*group).fused
        stacked = fusion.fuse_batch(*(frame[None] for frame in group))
        if not np.array_equal(single, stacked.fused[0]):
            return False
    return True


def run_bench(frames: int, n_sources: int, size: FrameShape,
              levels: int) -> tuple:
    groups = render_groups(frames, n_sources, size)
    rows = [measure("separate", groups, levels),
            measure("stacked", groups, levels)]
    base, stacked = rows
    parity_ok = check_parity(groups, levels)
    speedup = (stacked["fps"] / base["fps"]) if base["fps"] > 0 else 0.0

    lines = [f"N-way stacked-forward throughput ({frames} groups x "
             f"{n_sources} sources @ {size}, levels={levels}, "
             f"cpus={os.cpu_count()}):",
             f"  {'mode':>9} {'fps':>9} {'vs separate':>12}"]
    for row in rows:
        ratio = row["fps"] / base["fps"] if base["fps"] > 0 else 0.0
        lines.append(f"  {row['mode']:>9} {row['fps']:>9.2f} "
                     f"{ratio:>11.2f}x")
    lines.append("")
    lines.append(f"  bitwise parity with separate forwards: "
                 f"{'OK' if parity_ok else 'FAILED'}")
    return "\n".join(lines), rows, speedup, parity_ok


def test_nway_fusion_throughput(report):
    """Pytest entry: quick pass; parity asserted, speedup reported
    (the hard >= 1.5x bar lives in the script/CI invocation)."""
    text, rows, speedup, parity_ok = run_bench(
        frames=16, n_sources=3, size=FrameShape(40, 40), levels=2)
    report(text)
    assert parity_ok
    assert all(r["frames"] == 16 for r in rows)
    assert all(r["fps"] > 0 for r in rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=96,
                        help="frame groups per measurement (default 96)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 32 groups, small geometry")
    parser.add_argument("--sources", type=int, default=3,
                        help="sources per frame group (default 3)")
    parser.add_argument("--size", default="88x72",
                        help="fusion geometry, e.g. 88x72")
    parser.add_argument("--levels", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless stacked fps >= this multiple "
                             "of separate-forward fps")
    parser.add_argument("--json-out", default="BENCH_nway.json",
                        help="machine-readable results path "
                             "('' disables the write)")
    args = parser.parse_args(argv)

    frames = 32 if args.quick else args.frames
    if args.quick:
        size, levels = FrameShape(40, 40), 2
    else:
        width, height = (int(v) for v in args.size.lower().split("x"))
        size, levels = FrameShape(width, height), args.levels
    text, rows, speedup, parity_ok = run_bench(frames, args.sources,
                                               size, levels)
    print(text)

    if args.json_out:
        payload = {
            "bench": "nway_fusion",
            "frames": frames,
            "sources": args.sources,
            "size": str(size),
            "levels": levels,
            "cpus": os.cpu_count(),
            "rows": rows,
            "stacked_speedup": speedup,
            "parity_ok": parity_ok,
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")

    if not parity_ok:
        print("FAIL: stacked output is not bitwise-identical to "
              "separate forwards", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: stacked speedup {speedup:.2f}x < "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        print(f"OK: stacked speedup {speedup:.2f}x >= "
              f"{args.min_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
