"""Shard scaling: the same stream fleet at 1, 2 and 4 shard processes.

:class:`repro.serve.ShardedFusionService` exists to buy *multi-core*
throughput that a single GIL-bound interpreter cannot: each shard is a
full FusionService in its own process, frames travel over shared-memory
rings, and the parent brokers one global engine pool.  This bench
drives an 8-stream batch fleet (alternating ARM/NEON tenants on small
frames — the shape where NumPy vectorization is already saturated
per-process and the interpreter is the bottleneck) through the sharded
service at 1, 2 and 4 shards and reports aggregate FPS per shard
count.  Bitwise cross-shard-count parity is asserted, not assumed:
every stream must hash identically at every shard count — sharding
relocates the interpreter, never the arithmetic.

Runs two ways:

* under pytest (like every other bench): ``pytest
  benchmarks/bench_shard_scaling.py``;
* as a script with a CI-friendly quick mode::

      PYTHONPATH=src python benchmarks/bench_shard_scaling.py --quick
      PYTHONPATH=src python benchmarks/bench_shard_scaling.py \
          --scale 2 --min-speedup 1.6

``--quick`` gates on the issue's acceptance bar (2 shards >= 1.6x the
1-shard run) **only on multi-core hosts** — on a single core the shard
processes time-slice one CPU and the IPC tax makes scaling physically
impossible, so the gate reports and skips (CI boxes vary); the JSON
rows (``BENCH_shards.json``) are written either way.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Dict, List, Tuple

from repro.serve import ShardedFusionService
from repro.session import ArraySource, FusionConfig
from repro.types import FrameShape
from repro.video.scaler import resize_to
from repro.video.scene import SyntheticScene

SMALL = FrameShape(32, 24)

SHARD_COUNTS = (1, 2, 4)

#: enough virtual engine instances that the fleet-wide lease broker is
#: never the bottleneck — this bench isolates interpreter scaling
POOL = {"arm": 4, "neon": 4}

#: (name, engine, seed, frames at scale 1) — eight small-frame batch
#: tenants, the workload where per-frame Python overhead dominates and
#: a second interpreter is the only remaining lever
WORKLOAD: Tuple[Tuple[str, str, int, int], ...] = tuple(
    (f"tenant-{i}", "arm" if i % 2 == 0 else "neon", 20 + i, 24)
    for i in range(8))


def build_config(engine: str) -> FusionConfig:
    return FusionConfig(engine=engine, executor="batch", batch_size=8,
                        fusion_shape=SMALL, levels=2, seed=5,
                        quality_metrics=False, keep_records=True)


def recorded_footage(seed: int, frames: int) -> ArraySource:
    """Pre-rendered pairs at fusion geometry: the parent feeds shards
    recorded footage, so the synthetic render cost stays outside the
    measured interval (it would be identical dead weight at every
    shard count)."""
    shape = SMALL.array_shape
    scene = SyntheticScene(seed=seed)
    visible, thermal = [], []
    for i in range(frames):
        t_s = i / 25.0
        visible.append(resize_to(scene.render_visible(t_s), shape))
        thermal.append(resize_to(scene.render_thermal(t_s), shape))
    return ArraySource(visible, thermal)


def frame_hashes(records) -> List[str]:
    return [hashlib.sha256(r.frame.pixels.tobytes()).hexdigest()
            for r in records]


def run_sharded(shards: int, scale: int,
                footage: Dict[str, ArraySource]):
    service = ShardedFusionService(pool=POOL, shards=shards,
                                   max_in_flight=len(WORKLOAD) * 8,
                                   stream_queue_depth=8)
    for name, engine, seed, frames in WORKLOAD:
        service.add_stream(name, config=build_config(engine),
                           source=footage[name], frames=frames * scale)
    return service.serve()


def run_bench(scale: int) -> Tuple[str, Dict]:
    footage = {name: recorded_footage(seed, frames * scale)
               for name, engine, seed, frames in WORKLOAD}
    total_frames = sum(frames * scale for *_, frames in WORKLOAD)

    rows: Dict[int, Dict] = {}
    hashes: Dict[int, Dict[str, List[str]]] = {}
    for shards in SHARD_COUNTS:
        report = run_sharded(shards, scale, footage)
        rows[shards] = {
            "shards": shards,
            "frames": sum(s.frames for s in report.streams.values()),
            "wall_s": report.wall_seconds,
            "fps": report.aggregate_fps,
            "pool": dict(report.pool),
        }
        hashes[shards] = {name: frame_hashes(s.records)
                          for name, s in report.streams.items()}

    base_fps = rows[SHARD_COUNTS[0]]["fps"]
    for shards in SHARD_COUNTS:
        rows[shards]["speedup_vs_1"] = (rows[shards]["fps"] / base_fps
                                        if base_fps > 0 else 0.0)

    reference = hashes[SHARD_COUNTS[0]]
    mismatched = sorted(
        {name for shards in SHARD_COUNTS[1:]
         for name in reference if hashes[shards][name] != reference[name]})

    cpus = os.cpu_count() or 1
    lines = [f"Shard scaling: {len(WORKLOAD)} batch tenants, "
             f"{total_frames} frames total, pool {POOL}, cpus={cpus}:",
             f"  {'shards':>6} {'frames':>6} {'wall s':>8} "
             f"{'agg fps':>9} {'vs 1 shard':>10}  parity"]
    for shards in SHARD_COUNTS:
        row = rows[shards]
        parity = ("baseline" if shards == SHARD_COUNTS[0]
                  else "DIVERGED" if any(hashes[shards][n] != reference[n]
                                         for n in reference)
                  else "bitwise")
        lines.append(f"  {shards:>6} {row['frames']:>6} "
                     f"{row['wall_s']:>8.2f} {row['fps']:>9.2f} "
                     f"{row['speedup_vs_1']:>9.2f}x  {parity}")
    if cpus < 2:
        lines.append("  (single-core host: shard processes time-slice "
                     "one CPU; the speedup gate does not apply)")

    payload = {
        "pool": dict(POOL),
        "scale": scale,
        "cpus": cpus,
        "frames_total": total_frames,
        "shard_counts": list(SHARD_COUNTS),
        "rows": {str(k): v for k, v in rows.items()},
        "speedup_2_shards": rows[2]["speedup_vs_1"],
        "bitwise_parity": not mismatched,
        "mismatched_streams": mismatched,
    }
    return "\n".join(lines), payload


def test_shard_scaling(report):
    """Pytest entry: completion + cross-shard-count bitwise parity
    (the speedup gate runs in script mode, where the machine is known)."""
    text, payload = run_bench(scale=1)
    report(text)
    assert payload["bitwise_parity"], payload["mismatched_streams"]
    for shards in SHARD_COUNTS:
        row = payload["rows"][str(shards)]
        assert row["frames"] == payload["frames_total"]
        assert row["fps"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: scale 1 and gate 2 shards "
                             "at the acceptance bar (1.6x) on "
                             "multi-core hosts")
    parser.add_argument("--scale", type=int, default=2,
                        help="frame-count multiplier per stream "
                             "(default 2; --quick forces 1)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless 2-shard fps >= this multiple "
                             "of the 1-shard fps (multi-core hosts "
                             "only)")
    parser.add_argument("--json-out", default=None,
                        help="write the machine-readable rows as JSON")
    args = parser.parse_args(argv)

    scale = 1 if args.quick else args.scale
    min_speedup = args.min_speedup
    if min_speedup is None and args.quick:
        min_speedup = 1.6

    text, payload = run_bench(scale)
    print(text)

    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.json_out}")

    if not payload["bitwise_parity"]:
        print(f"FAIL: shard counts diverged bitwise: "
              f"{payload['mismatched_streams']}", file=sys.stderr)
        return 1
    if min_speedup is not None:
        if payload["cpus"] < 2:
            print(f"SKIP speedup gate: single-core host "
                  f"(2 shards measured {payload['speedup_2_shards']:.2f}x)")
        elif payload["speedup_2_shards"] < min_speedup:
            print(f"FAIL: 2-shard speedup "
                  f"{payload['speedup_2_shards']:.2f}x < "
                  f"{min_speedup:.2f}x", file=sys.stderr)
            return 1
        else:
            print(f"OK: 2-shard speedup "
                  f"{payload['speedup_2_shards']:.2f}x >= "
                  f"{min_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
