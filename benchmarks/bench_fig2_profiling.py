"""Fig. 2: profiling the software-only fusion of two input images.

The model profile attributes stage shares from the calibrated ARM
engine; the empirical profile times the actual Python implementation.
Both must show the paper's headline: the forward and inverse DT-CWT
dominate the pipeline.
"""

from repro.core.profiling import PipelineProfiler, profile_model
from repro.types import FrameShape

from conftest import format_line

FULL = FrameShape(88, 72)


def test_fig2_stage_shares(report):
    profile = profile_model(FULL, levels=3)
    pct = profile.percentages()

    lines = ["Fig. 2 - Profile Results for Image Fusion (ARM only, 88x72)",
             "=" * 60]
    for name, share in profile.ranked():
        bar = "#" * int(round(share / 2))
        lines.append(f"  {name:<26} {share:5.1f} %  {bar}")
    transforms = (pct["forward_dtcwt_visible"] + pct["forward_dtcwt_thermal"]
                  + pct["inverse_dtcwt"])
    lines.append("")
    lines.append(format_line("forward+inverse DT-CWT share",
                             "dominant (top bars ~50 %)",
                             f"{transforms:.1f} %"))
    report("\n".join(lines))

    assert transforms > 75.0
    assert profile.ranked()[0][0] in ("inverse_dtcwt",
                                      "forward_dtcwt_visible",
                                      "forward_dtcwt_thermal")


def test_empirical_profile_matches_structure(report, frame_pair_88x72):
    visible, thermal = frame_pair_88x72
    profiler = PipelineProfiler()
    for _ in range(3):
        profiler.run(visible, thermal)
    pct = profiler.percentages()
    transforms = (pct["forward_dtcwt_visible"] + pct["forward_dtcwt_thermal"]
                  + pct["inverse_dtcwt"])
    report(format_line("empirical transform share (python impl)",
                       "dominant", f"{transforms:.1f} %"))
    assert transforms > 60.0


def test_profiler_kernel(benchmark, frame_pair_88x72):
    visible, thermal = frame_pair_88x72
    profiler = PipelineProfiler()
    fused = benchmark(profiler.run, visible, thermal)
    assert fused.shape == visible.shape
