"""Adaptive scheduling ablation (the paper's conclusion + future work).

Compares, at every paper frame size:

* the three static configurations,
* the whole-frame adaptive choice (what the paper proposes),
* the per-level adaptive plan (this library's extension).

The adaptive row must equal the best static row everywhere; the
per-level plan may beat even that at sizes where deep levels fall under
the crossover.
"""

from repro.core.adaptive import CostModelScheduler, PerLevelScheduler
from repro.types import PAPER_FRAME_SIZES, FrameShape

from conftest import format_line


def test_adaptive_vs_static(engines, report):
    scheduler = CostModelScheduler(objective="time")
    per_level = PerLevelScheduler()

    lines = ["Adaptive scheduling ablation (ms per fused frame, 3 levels):",
             f"  {'size':>7} {'ARM':>9} {'NEON':>9} {'FPGA':>9} "
             f"{'adaptive':>9} {'per-level':>10}  chosen"]
    wins = 0
    for shape in PAPER_FRAME_SIZES:
        static = {name: e.frame_time(shape).total_s * 1e3
                  for name, e in engines.items()}
        decision = scheduler.choose(shape)
        plan = per_level.plan(shape)
        adaptive_ms = decision.predicted_s * 1e3
        plan_ms = plan.predicted_s * 1e3
        lines.append(
            f"  {str(shape):>7} {static['arm']:>9.2f} {static['neon']:>9.2f} "
            f"{static['fpga']:>9.2f} {adaptive_ms:>9.2f} {plan_ms:>10.2f}"
            f"  {decision.engine.name}")
        best_static = min(static.values())
        assert adaptive_ms <= best_static + 1e-9
        if plan_ms < best_static - 1e-9:
            wins += 1
    lines.append("")
    lines.append(format_line("adaptive == best static everywhere",
                             "claimed", "yes"))
    lines.append(format_line("per-level plan beats best static at",
                             "(extension)", f"{wins}/5 sizes"))
    report("\n".join(lines))
    assert wins >= 1  # mixing engines across levels pays at least once


def test_per_level_assignment_structure(report):
    """At the full frame the plan uses FPGA for coarse levels and NEON
    for the finest — the paper's threshold applied inside one frame."""
    plan = PerLevelScheduler().plan(FrameShape(88, 72), levels=3)
    report("Per-level plan @88x72: forward "
           f"{plan.forward_assignment}, inverse {plan.inverse_assignment}")
    assert plan.forward_assignment[0] == "fpga"
    assert plan.forward_assignment[-1] == "neon"


def test_energy_objective_changes_decisions(report):
    time_sched = CostModelScheduler(objective="time")
    energy_sched = CostModelScheduler(objective="energy")
    differences = []
    for px in range(36, 46):
        shape = FrameShape(px, px)
        t_pick = time_sched.choose(shape).engine.name
        e_pick = energy_sched.choose(shape).engine.name
        if t_pick != e_pick:
            differences.append((px, t_pick, e_pick))
    lines = ["Objective sensitivity near the crossover:"]
    for px, t_pick, e_pick in differences:
        lines.append(f"  {px}x{px}: time -> {t_pick}, energy -> {e_pick}")
    if not differences:
        lines.append("  (no divergence in this band)")
    report("\n".join(lines))
    # the +19.2 mW FPGA power must create at least one divergent size
    assert differences


def test_per_level_planner_kernel(benchmark):
    planner = PerLevelScheduler()
    plan = benchmark(planner.plan, FrameShape(88, 72), 3)
    assert plan.predicted_s > 0
