"""Kernel-backend throughput: float64 NumPy vs float32 vs JIT datapath.

The compiled-kernel claim is that the halo-extension JIT backend plus
the float32 datapath buys serial-loop throughput without touching the
engine seam: same primitives, same filter banks, same session API.
This bench measures end-to-end serial FPS of one seeded synthetic
stream across the datapath matrix — the float64 NumPy baseline, the
engine-native float32 path and the JIT backend at both precisions —
and verifies the parity contract on the side (the JIT backend is
bitwise-identical to NumPy at the same precision).

Runs two ways:

* under pytest (like every other bench): ``pytest
  benchmarks/bench_kernel_backends.py``;
* as a script with a CI-friendly quick mode that also emits a
  machine-readable summary::

      PYTHONPATH=src python benchmarks/bench_kernel_backends.py --quick
      PYTHONPATH=src python benchmarks/bench_kernel_backends.py \
          --frames 64 --min-speedup 2.0

``--min-speedup`` turns the report into an assertion (exit code 1 when
the JIT float32 datapath misses the bar against the float64 NumPy
baseline).  The bar holds on one core: the speedup comes from the
halo-extension formulation, preplanned taps and pooled scratch — and
from Numba compilation when it is installed — not from concurrency.
``--json-out`` (default ``BENCH_kernels.json``) writes the rows for CI
artifact diffing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.dtcwt import NUMBA_AVAILABLE
from repro.session import FusionConfig, FusionSession
from repro.types import FrameShape
from repro.video.scene import SyntheticScene

#: (label, engine, precision) datapath matrix; row 0 is the baseline.
DATAPATHS = (
    ("numpy/f64", "arm", "float64"),
    ("numpy/f32", "arm", "float32"),
    ("jit/f64", "jit", "float64"),
    ("jit/f32", "jit", "float32"),
)


def prerender(frames: int, size: FrameShape, seed: int = 7) -> List:
    """A pre-rendered frame-pair prefix shared by every datapath, so
    synthetic-scene rendering cost never dilutes the kernel
    comparison (same trick the plan autotuner uses)."""
    scene = SyntheticScene(width=size.width, height=size.height,
                           seed=seed)
    return [(scene.render_visible(i / 25.0),
             scene.render_thermal(i / 25.0)) for i in range(frames)]


def measure(engine: str, precision: Optional[str], pairs: List,
            size: FrameShape, levels: int, seed: int = 7) -> Dict:
    """Wall-clock FPS of one serial datapath over the shared prefix."""
    config = FusionConfig(engine=engine, executor="serial",
                          precision=precision,
                          fusion_shape=size, levels=levels, seed=seed,
                          quality_metrics=False, keep_records=False)
    with FusionSession(config) as session:
        start = time.perf_counter()
        count = sum(1 for _ in session.stream(list(pairs)))
        elapsed = time.perf_counter() - start
    return {
        "engine": engine,
        "precision": precision or "native",
        "frames": count,
        "elapsed_s": elapsed,
        "fps": count / elapsed if elapsed > 0 else 0.0,
    }


def check_parity(size: FrameShape, levels: int, frames: int = 4,
                 seed: int = 7) -> bool:
    """Spot-check the invariant the speedup must not cost: at each
    precision the JIT backend's fused frames are bitwise-identical to
    the NumPy backend's."""
    pairs = prerender(frames, size, seed)
    for precision in ("float32", "float64"):
        outputs = []
        for engine in ("arm", "jit"):
            config = FusionConfig(engine=engine, executor="serial",
                                  precision=precision, fusion_shape=size,
                                  levels=levels, seed=seed,
                                  quality_metrics=False,
                                  keep_records=False)
            with FusionSession(config) as session:
                outputs.append([r.pixels for r in
                                session.stream(list(pairs))])
        if not all(np.array_equal(a, b) for a, b in zip(*outputs)):
            return False
    return True


def run_bench(frames: int, size: FrameShape, levels: int) -> tuple:
    pairs = prerender(frames, size)
    rows = [dict(measure(engine, precision, pairs, size, levels),
                 label=label)
            for label, engine, precision in DATAPATHS]
    base = rows[0]
    parity_ok = check_parity(size, levels)

    lines = [f"Kernel-backend serial throughput ({frames} frames @ "
             f"{size}, levels={levels}, cpus={os.cpu_count()}, "
             f"numba={'yes' if NUMBA_AVAILABLE else 'no'}):",
             f"  {'datapath':>10} {'engine':>6} {'dtype':>8} {'fps':>8} "
             f"{'vs f64':>8}"]
    for row in rows:
        speedup = row["fps"] / base["fps"] if base["fps"] > 0 else 0.0
        lines.append(f"  {row['label']:>10} {row['engine']:>6} "
                     f"{row['precision']:>8} {row['fps']:>8.2f} "
                     f"{speedup:>7.2f}x")
    lines.append("")
    lines.append(f"  jit bitwise-identical to numpy per precision: "
                 f"{'OK' if parity_ok else 'FAILED'}")
    return "\n".join(lines), rows, base, parity_ok


def test_kernel_backend_throughput(report):
    """Pytest entry: quick pass; parity asserted, speedup reported
    (the hard >= 2x bar lives in the script/CI invocation)."""
    text, rows, base, parity_ok = run_bench(
        frames=12, size=FrameShape(40, 40), levels=2)
    report(text)
    assert parity_ok
    assert all(r["frames"] == 12 for r in rows)
    assert all(r["fps"] > 0 for r in rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=64,
                        help="stream length per measurement (default 64)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 24 frames, paper geometry")
    parser.add_argument("--size", default="88x72",
                        help="fusion geometry, e.g. 88x72")
    parser.add_argument("--levels", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless jit/f32 fps >= this multiple "
                             "of the numpy/f64 baseline fps")
    parser.add_argument("--json-out", default="BENCH_kernels.json",
                        help="machine-readable results path "
                             "('' disables the write)")
    args = parser.parse_args(argv)

    frames = 24 if args.quick else args.frames
    width, height = (int(v) for v in args.size.lower().split("x"))
    size = FrameShape(width, height)
    text, rows, base, parity_ok = run_bench(frames, size, args.levels)
    print(text)

    best = next(r for r in rows if r["label"] == "jit/f32")
    speedup = best["fps"] / base["fps"] if base["fps"] > 0 else 0.0

    if args.json_out:
        payload = {
            "bench": "kernel_backends",
            "frames": frames,
            "size": str(size),
            "levels": args.levels,
            "cpus": os.cpu_count(),
            "numba": NUMBA_AVAILABLE,
            "rows": rows,
            "jit_f32_speedup": speedup,
            "parity_ok": parity_ok,
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")

    if not parity_ok:
        print("FAIL: jit output is not bitwise-identical to numpy at "
              "matching precision", file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: jit/f32 speedup {speedup:.2f}x < "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        print(f"OK: jit/f32 speedup {speedup:.2f}x >= "
              f"{args.min_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
