"""Dense frame-size sweep locating every crossover (Section VII text).

The paper gives windows, not exact points: forward performance flips
between 35x35 and 40x40; energy flips between 40x40 and 64x48.  This
bench scans square frames pixel by pixel and reports where each metric
flips, plus the sensitivity of the crossover to the driver overhead
(the parameter that creates it).
"""

from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.fpga import FpgaEngine
from repro.hw.power import PowerModel
from repro.types import FrameShape

from conftest import format_line


def _first_fpga_win(fpga, neon, metric):
    for px in range(24, 96):
        shape = FrameShape(px, px)
        if metric(fpga, shape) < metric(neon, shape):
            return px
    return None


def test_crossover_locations(engines, report):
    neon, fpga = engines["neon"], engines["fpga"]
    power = PowerModel()

    fwd = _first_fpga_win(fpga, neon, lambda e, s: e.forward_stage_time(s))
    inv = _first_fpga_win(fpga, neon, lambda e, s: e.inverse_stage_time(s))
    tot = _first_fpga_win(fpga, neon, lambda e, s: e.frame_time(s).total_s)
    en = _first_fpga_win(
        fpga, neon,
        lambda e, s: e.frame_time(s).total_s * power.power_w(e.power_mode))

    lines = ["Crossover localisation (square frames, px):", ""]
    lines.append(format_line("forward DT-CWT", "35 < x <= 40", f"{fwd}"))
    lines.append(format_line("inverse DT-CWT", "'past 40x40' (see note)",
                             f"{inv}"))
    lines.append(format_line("total pipeline", "beyond 40x40", f"{tot}"))
    lines.append(format_line("total energy", "40x40 < x < 64x48", f"{en}"))
    lines.append("")
    lines.append("  note: the paper's inverse crossover claim (>40) is not "
                 "jointly satisfiable with its -60.6 % anchor; see "
                 "EXPERIMENTS.md.")
    report("\n".join(lines))

    assert 35 < fwd <= 40
    assert en > 40
    assert fwd <= en  # energy switch is never earlier than the time switch


def test_crossover_tracks_driver_overhead(report):
    """The crossover exists *because* of the per-invocation command cost;
    halving/doubling it must move the threshold accordingly."""
    from repro.hw.neon import NeonEngine
    neon = NeonEngine()
    points = []
    for scale in (0.5, 1.0, 2.0):
        cal = DEFAULT_CALIBRATION.with_overrides(
            fpga_driver_invocation_s=(
                DEFAULT_CALIBRATION.fpga_driver_invocation_s * scale))
        fpga = FpgaEngine(calibration=cal)
        points.append((scale, _first_fpga_win(
            fpga, neon, lambda e, s: e.forward_stage_time(s))))
    lines = ["Crossover vs driver invocation cost:"]
    for scale, px in points:
        lines.append(f"  driver cost x{scale:<4} -> crossover at "
                     f"{px}x{px} px")
    report("\n".join(lines))

    assert points[0][1] < points[1][1] < points[2][1]


def test_scheduler_choose_kernel(benchmark):
    from repro.core.adaptive import CostModelScheduler
    scheduler = CostModelScheduler()
    decision = benchmark(scheduler.choose, FrameShape(88, 72), 3)
    assert decision.engine.name == "fpga"
