"""HLS wavelet-engine datapath: functional throughput and cycle model.

Times the line-level functional model (the unit of work one hardware
invocation performs) and prints the PL-cycle budget per line — the
quantity that, together with the driver cost, produces Fig. 9's FPGA
curves.
"""

import numpy as np

from repro.hw.hls import HlsWaveletEngine, shift_register_dual_fir
from repro.hw.platform import DEFAULT_PLATFORM

from conftest import format_line


def test_cycle_budget_per_line(report):
    engine = HlsWaveletEngine()
    lines = ["PL cycle budget per invocation (12-tap engine, ACP bursts):",
             f"  {'row width':>10} {'cycles':>8} {'us @100MHz':>11}"]
    for width in (32, 44, 88, 720, 2048):
        words_in = width + 12
        words_out = width
        iters = width // 2 + 6
        seconds = engine.line_seconds_estimate(words_in, words_out, iters)
        cycles = seconds / DEFAULT_PLATFORM.pl_cycle_s
        lines.append(f"  {width:>10} {cycles:>8.0f} {seconds * 1e6:>11.2f}")
    lines.append("")
    lines.append(format_line(
        "88-px row latency vs driver overhead", "overhead dominates",
        f"{engine.line_seconds_estimate(100, 88, 50) * 1e6:.1f} us hw "
        "vs ~25 us cmd"))
    report("\n".join(lines))

    fast = engine.line_seconds_estimate(100, 88, 50)
    assert fast < 25e-6  # hardware is never the bottleneck at paper sizes


def test_vectorized_path_matches_scalar_datapath(report, rng=None):
    rng = np.random.default_rng(3)
    engine = HlsWaveletEngine()
    lp = rng.standard_normal(12).astype(np.float32)
    hp = rng.standard_normal(12).astype(np.float32)
    engine.load_coefficients(lp, hp)
    x = rng.standard_normal(2 * 44 + 12).astype(np.float32)
    lp_fast, hp_fast, _ = engine.forward_line(x, 44, step=2)
    ref_hp, ref_lp = shift_register_dual_fir(x, hp[::-1].copy(),
                                             lp[::-1].copy())
    worst = max(float(np.max(np.abs(lp_fast - ref_lp[:44]))),
                float(np.max(np.abs(hp_fast - ref_hp[:44]))))
    report(format_line("fast path vs literal Fig. 4 loop",
                       "bit-comparable", f"max delta {worst:.2e}"))
    assert worst < 1e-3


def test_forward_line_kernel(benchmark, rng=None):
    rng = np.random.default_rng(4)
    engine = HlsWaveletEngine()
    engine.load_coefficients(np.ones(12, np.float32) / 12,
                             np.ones(12, np.float32) / 12)
    x = rng.standard_normal(2 * 88 + 12).astype(np.float32)
    lp, hp, _ = benchmark(engine.forward_line, x, 88, 2)
    assert lp.shape == (88,)


def test_full_fpga_transform_kernel(benchmark, rng=None):
    """Wall-clock of a whole forward DT-CWT through the HLS path."""
    from repro.hw.fpga import HlsBackend
    from repro.dtcwt import Dtcwt2D
    rng = np.random.default_rng(5)
    x = rng.standard_normal((24, 32)).astype(np.float32)
    transform = Dtcwt2D(levels=2, backend=HlsBackend())
    pyramid = benchmark(transform.forward, x)
    assert pyramid.levels == 2
