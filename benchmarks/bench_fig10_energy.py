"""Fig. 10: total energy of fusing 10 frames at each size and mode."""

from repro.hw.energy import EnergyMeter
from repro.hw.power import PowerModel
from repro.system.runtime import energy_sweep, find_crossover, format_rows
from repro.types import FrameShape

from conftest import format_line

FULL = FrameShape(88, 72)


def test_fig10_table(engines, report):
    rows = energy_sweep(levels=3, frames=10)
    table = format_rows(rows, "millijoules / 10 frames",
                        "Fig. 10 - Comparison of Total Energy Used",
                        precision=1)

    power = PowerModel()
    arm, neon, fpga = engines["arm"], engines["neon"], engines["fpga"]

    def energy(engine, shape):
        return (engine.frame_time(shape).total_s
                * power.power_w(engine.power_mode))

    fpga_saving = 1 - energy(fpga, FULL) / energy(arm, FULL)
    neon_saving = 1 - energy(neon, FULL) / energy(arm, FULL)
    crossover = find_crossover(rows, "fpga", "neon")
    power_up = power.fpga_power_increase_w()

    lines = [table, "", "Anchors:"]
    lines.append(format_line("ARM+FPGA energy saving @88x72", "46.3 %",
                             f"{fpga_saving * 100:.1f} %"))
    lines.append(format_line("ARM+NEON energy saving @88x72", "8 %",
                             f"{neon_saving * 100:.1f} %"))
    lines.append(format_line("FPGA-mode power increase", "19.2 mW (3.6 %)",
                             f"{power_up * 1e3:.1f} mW "
                             f"({100 * power_up / power.power_w('arm'):.1f} %)"))
    lines.append(format_line("energy crossover (first FPGA win)",
                             "between 40x40 and 64x48", str(crossover)))
    report("\n".join(lines))

    assert 0.42 < fpga_saving < 0.52
    assert 0.05 < neon_saving < 0.13
    assert abs(power_up - 0.0192) < 5e-4
    assert crossover == FrameShape(64, 48)


def test_energy_accounting_kernel(benchmark, engines):
    """Wall-clock of the energy bookkeeping path itself."""
    fpga = engines["fpga"]

    def account():
        meter = EnergyMeter(mode="fpga")
        for _ in range(10):
            meter.add_breakdown("frame", fpga.frame_time(FULL))
        return meter.total_millijoules

    mj = benchmark(account)
    assert mj > 0
