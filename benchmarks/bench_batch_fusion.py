"""Batch fusion throughput: serial vs micro-batched wall-clock.

The batch-first numeric core's claim is that stacking frames through
single NumPy transform calls amortizes the per-frame Python dispatch
that dominates small-frame fusion — without changing one output bit.
This bench measures end-to-end FPS of the ``batch`` executor against
the ``serial`` baseline on the same seeded synthetic scene, sweeping
the micro-batch size, and verifies the bitwise-parity claim on the
side.

Runs two ways:

* under pytest (like every other bench): ``pytest
  benchmarks/bench_batch_fusion.py``;
* as a script with a CI-friendly quick mode that also emits a
  machine-readable summary::

      PYTHONPATH=src python benchmarks/bench_batch_fusion.py --quick
      PYTHONPATH=src python benchmarks/bench_batch_fusion.py \
          --frames 96 --batch-sizes 4 8 16 --min-speedup 1.3

``--min-speedup`` turns the report into an assertion (exit code 1 when
the best batched run misses the bar).  Unlike the thread-pipeline
bench, the bar is meaningful even on a single core: the speedup comes
from NumPy vectorization, not concurrency.  ``--json-out`` (default
``BENCH_batch.json``) writes the rows for CI artifact diffing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

import numpy as np

from repro.session import FusionConfig, FusionSession, SyntheticSource
from repro.types import FrameShape


def measure(executor: str, frames: int, size: FrameShape, levels: int,
            batch_size: int, seed: int = 7) -> Dict:
    """Wall-clock FPS of one executor over a fresh seeded stream."""
    config = FusionConfig(engine="neon", executor=executor,
                          batch_size=batch_size,
                          fusion_shape=size, levels=levels, seed=seed,
                          quality_metrics=False, keep_records=False)
    with FusionSession(config) as session:
        source = SyntheticSource(seed=seed)
        start = time.perf_counter()
        count = sum(1 for _ in session.stream(source, limit=frames))
        elapsed = time.perf_counter() - start
    return {
        "executor": executor,
        "batch_size": batch_size if executor == "batch" else 1,
        "frames": count,
        "elapsed_s": elapsed,
        "fps": count / elapsed if elapsed > 0 else 0.0,
    }


def check_parity(size: FrameShape, levels: int, batch_size: int,
                 frames: int = 6, seed: int = 7) -> bool:
    """Spot-check the invariant the speedup must not cost: bitwise
    identity of batched and serial outputs."""
    outputs = []
    for executor in ("serial", "batch"):
        config = FusionConfig(engine="neon", executor=executor,
                              batch_size=batch_size, fusion_shape=size,
                              levels=levels, seed=seed,
                              quality_metrics=False, keep_records=False)
        with FusionSession(config) as session:
            outputs.append([r.frame.pixels for r in
                            session.stream(SyntheticSource(seed=seed),
                                           limit=frames)])
    return all(np.array_equal(a, b) for a, b in zip(*outputs))


def run_bench(frames: int, size: FrameShape, levels: int,
              batch_sizes: List[int]) -> tuple:
    rows = [measure("serial", frames, size, levels, batch_size=1)]
    for batch_size in batch_sizes:
        rows.append(measure("batch", frames, size, levels,
                            batch_size=batch_size))
    base = rows[0]
    parity_ok = check_parity(size, levels, batch_sizes[0])

    lines = [f"Batch-executor wall-clock throughput ({frames} frames @ "
             f"{size}, levels={levels}, cpus={os.cpu_count()}):",
             f"  {'executor':>8} {'batch':>6} {'fps':>8} {'vs serial':>10}"]
    for row in rows:
        speedup = row["fps"] / base["fps"] if base["fps"] > 0 else 0.0
        lines.append(f"  {row['executor']:>8} {row['batch_size']:>6} "
                     f"{row['fps']:>8.2f} {speedup:>9.2f}x")
    lines.append("")
    lines.append(f"  bitwise parity with serial: "
                 f"{'OK' if parity_ok else 'FAILED'}")
    return "\n".join(lines), rows, base, parity_ok


def test_batch_fusion_throughput(report):
    """Pytest entry: quick pass; parity asserted, speedup reported
    (the hard >= 1.3x bar lives in the script/CI invocation)."""
    text, rows, base, parity_ok = run_bench(
        frames=16, size=FrameShape(40, 40), levels=2, batch_sizes=[8])
    report(text)
    assert parity_ok
    assert all(r["frames"] == 16 for r in rows)
    assert all(r["fps"] > 0 for r in rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=96,
                        help="stream length per measurement (default 96)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 32 frames, paper geometry")
    parser.add_argument("--size", default="88x72",
                        help="fusion geometry, e.g. 88x72")
    parser.add_argument("--levels", type=int, default=3)
    parser.add_argument("--batch-sizes", type=int, nargs="+",
                        default=[4, 8, 16])
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless the best batched fps >= this "
                             "multiple of serial fps")
    parser.add_argument("--json-out", default="BENCH_batch.json",
                        help="machine-readable results path "
                             "('' disables the write)")
    args = parser.parse_args(argv)

    frames = 32 if args.quick else args.frames
    width, height = (int(v) for v in args.size.lower().split("x"))
    size = FrameShape(width, height)
    text, rows, base, parity_ok = run_bench(frames, size, args.levels,
                                            args.batch_sizes)
    print(text)

    best = max((r for r in rows if r["executor"] == "batch"),
               key=lambda r: r["fps"])
    speedup = best["fps"] / base["fps"] if base["fps"] > 0 else 0.0

    if args.json_out:
        payload = {
            "bench": "batch_fusion",
            "frames": frames,
            "size": str(size),
            "levels": args.levels,
            "cpus": os.cpu_count(),
            "rows": rows,
            "best_speedup": speedup,
            "best_batch_size": best["batch_size"],
            "parity_ok": parity_ok,
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")

    if not parity_ok:
        print("FAIL: batched output is not bitwise-identical to serial",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: best batch speedup {speedup:.2f}x < "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        print(f"OK: best batch speedup {speedup:.2f}x >= "
              f"{args.min_speedup:.2f}x (batch_size="
              f"{best['batch_size']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
