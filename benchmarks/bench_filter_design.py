"""Filter-design verification: the constructed banks vs their targets.

The reproduction designs every wavelet filter from first principles
(DESIGN.md section 5).  This bench prints the characterization table a
filter designer would demand and asserts the design identities:

* CDF 9/7 level-1 pair: 4+4 vanishing moments, PR identity to 1e-12;
* q-shift pair: orthonormal, |H_a| == |H_b|, half-sample delay;
* the 12-tap variant used by the paper's hardware.
"""

import numpy as np

from repro.dtcwt import dtcwt_banks
from repro.dtcwt.filter_analysis import (
    characterize,
    magnitude_match_error,
    pr_identity_error,
    stopband_attenuation_db,
    vanishing_moments,
)
from repro.dtcwt.transform1d import analytic_quality

from conftest import format_line


def test_bank_characterization_table(report):
    lines = ["Designed filter banks vs design targets:", ""]
    for qshift_length in (12, 14):
        banks = dtcwt_banks(qshift_length=qshift_length)
        summary = characterize(banks)
        analytic = analytic_quality(level=3, length=256, banks=banks)
        lines.append(f"  [level1 {summary.level1_name} + "
                     f"{summary.qshift_name}]")
        lines.append(format_line("  level-1 vanishing moments", "4 / 4",
                                 f"{summary.level1_moments_analysis} / "
                                 f"{summary.level1_moments_synthesis}"))
        lines.append(format_line("  level-1 PR identity error", "~0",
                                 f"{pr_identity_error(banks.level1):.1e}"))
        lines.append(format_line("  q-shift delay difference", "0.500",
                                 f"{summary.qshift_delay_difference:+.4f}"))
        lines.append(format_line("  q-shift |Ha|-|Hb| error", "0",
                                 f"{magnitude_match_error(banks.qshift):.1e}"))
        lines.append(format_line("  q-shift stop-band (0.8pi)", "> 15 dB",
                                 f"{summary.qshift_stopband_db:.1f} dB"))
        lines.append(format_line("  negative-frequency energy",
                                 "0 (analytic)", f"{analytic:.2e}"))
        lines.append("")
    report("\n".join(lines))

    banks = dtcwt_banks()
    assert pr_identity_error(banks.level1) < 1e-12
    assert magnitude_match_error(banks.qshift) < 1e-12
    assert abs(abs(banks.qshift.delay_difference) - 0.5) < 0.01
    assert analytic_quality(level=3, length=256, banks=banks) < 0.01


def test_moment_ladder(report):
    """Vanishing moments across the constructible DWT filter family."""
    from repro.dtcwt import orthonormal_dwt_filter
    lines = ["Daubechies-family moments (constructed, not tabulated):"]
    for length in (4, 6, 8, 10):
        taps = orthonormal_dwt_filter(length)
        moments = vanishing_moments(taps, at=-1.0)
        attenuation = stopband_attenuation_db(taps)
        lines.append(f"  {length:>2}-tap: {moments} moments, "
                     f"{attenuation:.1f} dB stop-band")
        assert moments == length // 2
    report("\n".join(lines))


def test_bank_construction_kernel(benchmark):
    from repro.dtcwt.coeffs import qshift_bank
    qshift_bank.cache_clear()

    def construct():
        qshift_bank.cache_clear()
        return qshift_bank(14)

    bank = benchmark(construct)
    assert bank.length == 14
