"""Fig. 9(a): forward DT-CWT time on ARM / NEON / FPGA vs frame size.

Regenerates the figure's series (seconds for 10 fused frames at the
five paper sizes) from the calibrated platform model and checks the
published anchor percentages; pytest-benchmark times the functional
forward transform that underlies the ARM path.
"""

import numpy as np

from repro.dtcwt import Dtcwt2D
from repro.system.runtime import format_rows, forward_stage_sweep
from repro.types import FrameShape

from conftest import format_line

FULL = FrameShape(88, 72)
SMALL = FrameShape(32, 24)


def test_fig9a_table(engines, report):
    rows = forward_stage_sweep(levels=3, frames=10)
    table = format_rows(rows, "seconds / 10 frames",
                        "Fig. 9(a) - Performance Comparison of Forward DT-CWT")

    arm, neon, fpga = engines["arm"], engines["neon"], engines["fpga"]
    fpga_gain = 1 - fpga.forward_stage_time(FULL) / arm.forward_stage_time(FULL)
    neon_gain = 1 - neon.forward_stage_time(FULL) / arm.forward_stage_time(FULL)
    penalty = (fpga.forward_stage_time(SMALL)
               / neon.forward_stage_time(SMALL) - 1.0)

    lines = [table, "", "Anchors:"]
    lines.append(format_line("FPGA enhancement @88x72", "55.6 %",
                             f"{fpga_gain * 100:.1f} %"))
    lines.append(format_line("NEON enhancement @88x72", "10 %",
                             f"{neon_gain * 100:.1f} %"))
    lines.append(format_line("FPGA degradation vs NEON @32x24", "36.4 %",
                             f"{penalty * 100:.1f} %"))
    report("\n".join(lines))

    assert abs(fpga_gain - 0.556) < 0.02
    assert abs(neon_gain - 0.10) < 0.02
    assert abs(penalty - 0.364) < 0.04


def test_forward_transform_kernel(benchmark, frame_pair_88x72):
    """Wall-clock of the functional forward DT-CWT (reference backend)."""
    visible, _ = frame_pair_88x72
    transform = Dtcwt2D(levels=3)
    pyramid = benchmark(transform.forward, visible)
    assert pyramid.levels == 3
