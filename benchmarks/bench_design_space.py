"""HLS design-space and DVFS studies (extensions beyond the paper).

The paper commits to one engine (fully parallel, II=1, 100 MHz) and one
platform operating point (PS at 533 MHz).  These benches map the
neighbourhood of that choice: the area/latency Pareto of folded MAC
arrays, and the time/energy surface across PS operating points.
"""

from repro.hw.design_space import DesignPoint, explore, pareto_frontier
from repro.hw.dvfs import best_operating_point, sweep_operating_points
from repro.hw.vectorization import compare_strategies, vectorization_report
from repro.types import FrameShape

from conftest import format_line

FULL = FrameShape(88, 72)


def test_pareto_of_folded_engines(report):
    points = explore(FULL)
    frontier = pareto_frontier(points)

    lines = ["HLS design space (forward transform @88x72, PL side only):",
             f"  {'unroll':>7} {'II':>3} {'ms/frame':>9} {'slices':>7} "
             f"{'on Pareto':>10}"]
    frontier_ids = {id(e) for e in frontier}
    for e in points:
        lines.append(f"  {e.point.unroll:>7} {e.point.initiation_interval:>3} "
                     f"{e.seconds_per_frame * 1e3:>9.2f} {e.slices:>7} "
                     f"{'yes' if id(e) in frontier_ids else '':>10}")
    lines.append("")
    lines.append(format_line("paper's point (unroll=12, II=1)",
                             "Table I area", "fastest, largest"))
    report("\n".join(lines))

    fastest = min(points, key=lambda e: e.seconds_per_frame)
    assert fastest.point.unroll == 12  # the paper chose the fast corner
    assert len(frontier) >= 3          # folding offers real alternatives


def test_dvfs_surface(report):
    results = sweep_operating_points(FULL)
    lines = ["PS operating-point sweep @88x72 (ms/frame | mJ/frame):",
             f"  {'PS MHz':>7} {'ARM':>15} {'NEON':>15} {'FPGA':>15}"]
    by_freq = {}
    for r in results:
        by_freq.setdefault(r.ps_hz, {})[r.engine] = r
    for ps_hz in sorted(by_freq):
        row = by_freq[ps_hz]
        cells = " ".join(
            f"{row[e].seconds_per_frame * 1e3:6.1f}|{row[e].millijoules_per_frame:7.1f}"
            for e in ("arm", "neon", "fpga"))
        lines.append(f"  {ps_hz / 1e6:>7.0f} {cells}")
    best = best_operating_point(results, "energy")
    lines.append("")
    lines.append(format_line("energy-optimal configuration", "(extension)",
                             f"{best.engine} @ {best.ps_hz / 1e6:.0f} MHz"))
    report("\n".join(lines))

    # at every operating point the full-frame ranking holds
    for ps_hz, row in by_freq.items():
        assert (row["fpga"].millijoules_per_frame
                < row["neon"].millijoules_per_frame)


def test_fig3_vectorization_strategies(report):
    """Fig. 3 (Section IV): manual intrinsics vs auto-vectorization."""
    times = compare_strategies(FULL)
    gain_manual = 1 - times["manual"] / times["scalar"]
    gain_auto = 1 - times["auto"] / times["scalar"]

    lines = ["Fig. 3 / Section IV - vectorization strategies "
             "(single forward @88x72):"]
    for name in ("scalar", "manual", "auto"):
        lines.append(f"  {name:<8} {times[name] * 1e3:8.2f} ms")
    lines.append("")
    lines.append(format_line("manual vs auto enhancement",
                             "'similar performance'",
                             f"{gain_manual * 100:.1f} % vs "
                             f"{gain_auto * 100:.1f} %"))
    epilogues = [r for r in vectorization_report(FrameShape(35, 35))
                 if "epilogue" in r.reason]
    lines.append(format_line("scalar epilogues at 35x35",
                             "'performance degradation'",
                             f"{len(epilogues)} loops affected"))
    report("\n".join(lines))

    assert abs(gain_manual - gain_auto) < 0.02
    assert epilogues


def test_design_space_kernel(benchmark):
    result = benchmark(explore, FULL)
    assert len(result) == 6
