"""Executor throughput: serial vs pipelined vs heterogeneous wall-clock.

The execution layer's claim is that overlap — the paper's double
buffering and CPU/FPGA co-scheduling, generalised — buys wall-clock
throughput without changing a single output bit.  This bench measures
end-to-end FPS for each executor on the same seeded synthetic stream
and reports speedups against the serial baseline, plus each executor's
stage occupancy so the overlap is visible, not inferred.

Runs two ways:

* under pytest (like every other bench): ``pytest
  benchmarks/bench_executor_throughput.py``;
* as a script with a CI-friendly quick mode::

      PYTHONPATH=src python benchmarks/bench_executor_throughput.py --quick
      PYTHONPATH=src python benchmarks/bench_executor_throughput.py \
          --frames 64 --min-speedup 1.5

``--min-speedup`` turns the report into an assertion (exit code 1 when
the pipeline executor misses the bar) for multi-core CI runners.  The
default is report-only: on a single-core host the GIL-bound stages
cannot overlap, and an honest 1.0x is the expected result there.

Since the declarative plan API, every stream is lowered through the
:class:`repro.graph.Planner` before it runs; ``--quick`` therefore
also guards the *planning overhead* — building the canonical graph and
lowering it must add less than ``--max-plan-overhead`` (default 5%) of
one serial stream's wall time, so the IR stays free in practice.
``--json-out`` writes the machine-readable rows (plus the overhead
measurement) for CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

from repro.exec import executor_names
from repro.graph import FusionGraph, Planner
from repro.session import FusionConfig, FusionSession, SyntheticSource
from repro.types import FrameShape


def measure(executor: str, frames: int, size: FrameShape, levels: int,
            workers: int, queue_depth: int, seed: int = 7) -> Dict:
    """Wall-clock FPS of one executor over a fresh seeded stream."""
    config = FusionConfig(engine="neon", executor=executor,
                          workers=workers, queue_depth=queue_depth,
                          fusion_shape=size, levels=levels, seed=seed,
                          quality_metrics=False, keep_records=False)
    with FusionSession(config) as session:
        source = SyntheticSource(seed=seed)
        start = time.perf_counter()
        count = sum(1 for _ in session.stream(source, limit=frames))
        elapsed = time.perf_counter() - start
        throughput = dict(session.report().throughput)
    return {
        "executor": executor,
        "frames": count,
        "elapsed_s": elapsed,
        "fps": count / elapsed if elapsed > 0 else 0.0,
        "occupancy": throughput.get("stage_occupancy", {}),
        "steals": throughput.get("steals", 0),
    }


def run_bench(frames: int, size: FrameShape, levels: int, workers: int,
              queue_depth: int, executors: List[str]) -> tuple:
    rows = [measure(name, frames, size, levels, workers, queue_depth)
            for name in executors]
    base = next((r for r in rows if r["executor"] == "serial"), rows[0])

    lines = [f"Executor wall-clock throughput ({frames} frames @ "
             f"{size}, levels={levels}, workers={workers}, "
             f"cpus={os.cpu_count()}):",
             f"  {'executor':>9} {'fps':>8} {'vs serial':>10} "
             f"{'steals':>7}  busiest stages"]
    for row in rows:
        speedup = row["fps"] / base["fps"] if base["fps"] > 0 else 0.0
        top = sorted(row["occupancy"].items(), key=lambda kv: -kv[1])[:3]
        stages = ", ".join(f"{k} {v:.0%}" for k, v in top)
        lines.append(f"  {row['executor']:>9} {row['fps']:>8.2f} "
                     f"{speedup:>9.2f}x {row['steals']:>7}  {stages}")
    lines.append("")
    lines.append("  (every executor produces bitwise-identical frames; "
                 "only the schedule differs)")
    return "\n".join(lines), rows, base


def measure_planning(size: FrameShape, levels: int, reps: int = 25) -> float:
    """Mean seconds to build the canonical graph and lower it — the
    once-per-stream cost the plan API added."""
    config = FusionConfig(engine="neon", fusion_shape=size, levels=levels,
                          quality_metrics=False, keep_records=False)
    planner = Planner()
    planner.lower(FusionGraph.canonical(), config)  # warm any caches
    start = time.perf_counter()
    for _ in range(reps):
        planner.lower(FusionGraph.canonical(), config)
    return (time.perf_counter() - start) / reps


def test_executor_throughput(report):
    """Pytest entry: quick pass over all executors, with the output
    parity spot-checked on the side by tests/exec."""
    text, rows, _ = run_bench(frames=12, size=FrameShape(40, 40), levels=2,
                              workers=2, queue_depth=4,
                              executors=list(executor_names()))
    report(text)
    assert all(r["frames"] == 12 for r in rows)
    assert all(r["fps"] > 0 for r in rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=64,
                        help="stream length per executor (default 64)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 16 frames, small geometry")
    parser.add_argument("--size", default="40x40",
                        help="fusion geometry, e.g. 88x72")
    parser.add_argument("--levels", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=4)
    parser.add_argument("--executors", nargs="+",
                        default=list(executor_names()))
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless pipeline fps >= this multiple "
                             "of serial fps (use on multi-core runners)")
    parser.add_argument("--max-plan-overhead", type=float, default=None,
                        help="fail if planning (graph build + lowering) "
                             "exceeds this fraction of one serial "
                             "stream's wall time; --quick defaults it "
                             "to 0.05")
    parser.add_argument("--json-out", default=None,
                        help="write the per-executor rows and the "
                             "plan-overhead measurement as JSON")
    args = parser.parse_args(argv)

    frames = 16 if args.quick else args.frames
    width, height = (int(v) for v in args.size.lower().split("x"))
    size = FrameShape(width, height)
    text, rows, base = run_bench(frames, size, args.levels, args.workers,
                                 args.queue_depth, args.executors)
    print(text)

    max_overhead = args.max_plan_overhead
    if max_overhead is None and args.quick:
        max_overhead = 0.05
    plan_s = measure_planning(size, args.levels)
    # the bound is defined against one *serial* stream; other rows are
    # faster and would inflate the fraction
    serial = next((r for r in rows if r["executor"] == "serial"), None)
    plan_fraction = (plan_s / serial["elapsed_s"]
                     if serial and serial["elapsed_s"] > 0 else None)
    if plan_fraction is None:
        if args.max_plan_overhead is not None:
            # an explicitly requested guard must never pass vacuously
            print("FAIL: --max-plan-overhead needs the serial executor "
                  "in --executors to measure its baseline",
                  file=sys.stderr)
            return 1
        print(f"  planning overhead: {plan_s * 1e3:.3f} ms per stream "
              f"(no serial run measured; overhead guard skipped)")
    else:
        print(f"  planning overhead: {plan_s * 1e3:.3f} ms per stream "
              f"({plan_fraction:.2%} of one serial drive)")

    if args.json_out:
        payload = {
            "frames": frames,
            "size": str(size),
            "levels": args.levels,
            "rows": rows,
            "plan_seconds": plan_s,
            "plan_overhead_fraction": plan_fraction,
        }
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"  wrote {args.json_out}")

    if (max_overhead is not None and plan_fraction is not None
            and plan_fraction > max_overhead):
        print(f"FAIL: planning adds {plan_fraction:.2%} of serial wall "
              f"time (> {max_overhead:.0%})", file=sys.stderr)
        return 1

    if args.min_speedup is not None:
        pipe = next((r for r in rows if r["executor"] == "pipeline"), None)
        if pipe is None or base["fps"] <= 0:
            print("min-speedup check needs both serial and pipeline runs",
                  file=sys.stderr)
            return 1
        speedup = pipe["fps"] / base["fps"]
        if speedup < args.min_speedup:
            print(f"FAIL: pipeline speedup {speedup:.2f}x < "
                  f"{args.min_speedup:.2f}x", file=sys.stderr)
            return 1
        print(f"OK: pipeline speedup {speedup:.2f}x >= "
              f"{args.min_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
