"""Property-based tests of the optimization passes: parity under fire.

The pass pipeline's contract is absolute — **an optimized plan yields
bitwise-identical frames and exactly equal modelled time/energy to the
unoptimized plan**, whatever graph it rewrote, whatever config it was
lowered against, under every executor.  Hypothesis drives the search:
random canonical-graph variants (feature flags, spliced custom map
stages, forced placements), random configs, and the executor itself as
a sampled dimension, each example fusing a short deterministic clip
both ways and comparing every output bit.

Structural invariants ride along: passes never lose or duplicate
schedule entries, fused units partition the region they rewrote, and
the pipeline is idempotent.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import FusionGraph, Planner, Stage, optimize_plan
from repro.session import FusionConfig, FusionSession
from repro.types import FrameShape

_SETTINGS = dict(deadline=None, max_examples=25)


def _boost(task):
    task.fused = task.fused * 1.0 + 0.5


def _dim(task):
    task.visible = task.visible * 0.5


@st.composite
def optimizable_case(draw):
    """A random (config, graph_overrides, executor) triple."""
    registration = draw(st.booleans())
    temporal = draw(st.booleans())
    engine = draw(st.sampled_from(("arm", "neon", "fpga", "adaptive")))
    executor = draw(st.sampled_from(("serial", "pipeline", "hetero",
                                     "batch")))
    levels = draw(st.integers(1, 2))
    shape = FrameShape(*draw(st.sampled_from(((24, 24), (40, 32)))))
    overrides = {}
    if draw(st.booleans()):
        anchor = "temporal" if temporal else "fuse"
        overrides["insert_after"] = {
            anchor: (Stage(name="boost", fn=_boost),)}
    if draw(st.booleans()) and not temporal:
        overrides["place"] = {"fuse": draw(st.sampled_from(("arm",
                                                            "neon")))}
    config = FusionConfig(
        engine=engine, executor=executor, workers=2,
        batch_size=draw(st.sampled_from((2, 3))),
        fusion_shape=shape, levels=levels,
        registration=registration, temporal=temporal,
        quality_metrics=False, keep_records=True,
        graph_overrides=overrides or None,
    )
    frames = draw(st.integers(2, 4))
    return config, frames


def _clip(config, frames):
    rng = np.random.default_rng(2016)
    shape = config.fusion_shape.array_shape
    return [(rng.uniform(0, 255, shape), rng.uniform(0, 255, shape))
            for _ in range(frames)]


def _drive(config, pairs):
    with FusionSession(config) as session:
        report = session.run(len(pairs), source=iter(list(pairs)))
    return report


class TestPassParityProperties:
    @settings(**_SETTINGS)
    @given(case=optimizable_case())
    def test_bitwise_parity_and_energy_balance(self, case):
        config, frames = case
        pairs = _clip(config, frames)
        ref = _drive(config, pairs)
        opt = _drive(config.with_overrides(optimize=True), pairs)
        assert ref.frames == opt.frames
        assert ref.model_millijoules_total == opt.model_millijoules_total
        assert ref.model_seconds_total == opt.model_seconds_total
        assert ref.engine_usage == opt.engine_usage
        for a, b in zip(ref.records, opt.records):
            assert np.array_equal(a.frame.pixels, b.frame.pixels)
            assert a.engine == b.engine

    @settings(**_SETTINGS)
    @given(case=optimizable_case())
    def test_passes_preserve_schedule_and_nodes(self, case):
        config, _ = case
        from repro.session.session import build_session_graph
        graph = build_session_graph(config)
        plan = Planner().lower(graph, config)
        optimized = optimize_plan(plan, config)
        assert optimized.optimized
        assert set(optimized.schedule) == set(plan.schedule)
        assert set(optimized.nodes) == set(plan.nodes)
        # every fused unit partitions the region it rewrote: members
        # appear nowhere else in compute, each member exactly once
        members = [m for unit in optimized.units.values()
                   for m in unit]
        assert len(members) == len(set(members))
        for name in optimized.compute:
            if name in optimized.units:
                assert all(m not in optimized.compute
                           for m in optimized.units[name])
            else:
                assert name not in members
        # parallel wave only holds whole units or original parallels
        for name in optimized.parallel:
            group = optimized.members(name)
            assert set(group) <= set(plan.parallel) \
                or name in plan.parallel

    @settings(**_SETTINGS)
    @given(case=optimizable_case())
    def test_pipeline_is_idempotent(self, case):
        config, _ = case
        from repro.session.session import build_session_graph
        graph = build_session_graph(config)
        plan = Planner().lower(graph, config)
        once = optimize_plan(plan, config)
        twice = optimize_plan(once, config)
        assert twice.units == once.units
        assert twice.scratch == once.scratch
        assert twice.hoisted_frame_seconds == once.hoisted_frame_seconds
        assert twice.schedule == once.schedule

    @settings(**_SETTINGS)
    @given(case=optimizable_case())
    def test_hoisted_costs_match_the_live_model(self, case):
        """The hoisted table must agree exactly with what the ingest
        path would have computed per frame — modelled accounting may
        not drift by one bit."""
        from repro.hw.registry import create_engine
        from repro.session.session import build_session_graph
        config, _ = case
        graph = build_session_graph(config)
        plan = Planner().lower(graph, config)
        optimized = optimize_plan(plan, config)
        for name, seconds in optimized.hoisted_frame_seconds.items():
            live = create_engine(name).frame_time(
                config.fusion_shape, config.levels).total_s
            assert seconds == live
