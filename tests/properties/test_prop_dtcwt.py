"""Property-based tests of the wavelet substrate's invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dtcwt import Dtcwt2D, Dwt2D

_SETTINGS = dict(deadline=None, max_examples=25)


def images(min_side=8, max_side=48):
    sides = st.integers(min_side, max_side)
    return sides.flatmap(
        lambda rows: sides.flatmap(
            lambda cols: hnp.arrays(
                dtype=np.float64,
                shape=(rows, cols),
                elements=st.floats(-1e3, 1e3, allow_nan=False,
                                   allow_infinity=False, width=64),
            )
        )
    )


class TestPerfectReconstruction:
    @settings(**_SETTINGS)
    @given(image=images(), levels=st.integers(1, 3))
    def test_dtcwt_roundtrip_any_content_any_shape(self, image, levels):
        transform = Dtcwt2D(levels=levels)
        rec = transform.inverse(transform.forward(image))
        scale = max(1.0, float(np.max(np.abs(image))))
        assert np.max(np.abs(rec - image)) < 1e-8 * scale

    @settings(**_SETTINGS)
    @given(image=images(), levels=st.integers(1, 3))
    def test_dwt_roundtrip(self, image, levels):
        transform = Dwt2D(levels=levels)
        rec = transform.inverse(transform.forward(image))
        scale = max(1.0, float(np.max(np.abs(image))))
        assert np.max(np.abs(rec - image)) < 1e-8 * scale


class TestLinearity:
    @settings(**_SETTINGS)
    @given(
        image=images(min_side=8, max_side=32),
        scalar=st.floats(-100, 100, allow_nan=False),
    )
    def test_scaling_commutes(self, image, scalar):
        transform = Dtcwt2D(levels=2)
        scaled = transform.forward(scalar * image)
        base = transform.forward(image)
        for level in range(2):
            assert np.allclose(scaled.highpasses[level],
                               scalar * base.highpasses[level],
                               atol=1e-6 * max(1.0, abs(scalar))
                               * max(1.0, float(np.max(np.abs(image)))))


class TestEnergy:
    @settings(**_SETTINGS)
    @given(image=images(min_side=8, max_side=32))
    def test_dwt_preserves_energy(self, image):
        """Orthonormal critically-sampled transform: exact Parseval."""
        pyr = Dwt2D(levels=2).forward(image)
        if pyr.padded_shape != image.shape:
            return  # padding changes the energy bookkeeping
        total = float(np.sum(pyr.lowpass ** 2)) + sum(
            float(np.sum(d ** 2)) for d in pyr.details)
        assert np.isclose(total, float(np.sum(image ** 2)), rtol=1e-9,
                          atol=1e-6)

    @settings(**_SETTINGS)
    @given(image=images(min_side=8, max_side=32))
    def test_dtcwt_is_a_tight_frame_up_to_redundancy(self, image):
        pyr = Dtcwt2D(levels=2).forward(image)
        if pyr.padded_shape != image.shape:
            return
        total = float(np.sum(np.abs(pyr.lowpass) ** 2)) + sum(
            float(np.sum(np.abs(h) ** 2)) for h in pyr.highpasses)
        energy = float(np.sum(image ** 2))
        if energy < 1e-12:
            assert total < 1e-9
        else:
            assert 3.2 < total / energy < 4.8
