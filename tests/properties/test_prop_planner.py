"""Property-based tests of the Planner: random valid graphs × configs.

The planner is the seam every executor (and now the serving layer)
trusts: whatever graph a user builds and whatever config it is lowered
against, the emitted :class:`~repro.graph.FusionPlan` must schedule
every stage exactly once, respect the dataflow edges, partition the
schedule cleanly into head/parallel/mid/tail, and cost the plan as the
sum of its per-stage costs.  Hypothesis builds the graphs: the
canonical pipeline under random feature flags, splice-extended with
random custom map stages at random anchors.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import FusionGraph, Planner, Stage
from repro.session import FusionConfig
from repro.types import FrameShape

_SETTINGS = dict(deadline=None, max_examples=25)


def _noop(task):  # the map stages never run here; lowering only
    return None


@st.composite
def graph_and_config(draw):
    """A random valid (graph, config) pair for the planner."""
    registration = draw(st.booleans())
    temporal = draw(st.booleans())
    engine = draw(st.sampled_from(("arm", "neon", "fpga", "adaptive",
                                   "online")))
    levels = draw(st.integers(1, 3))
    width = draw(st.sampled_from((24, 40, 88)))
    height = draw(st.sampled_from((24, 40, 72)))
    executor = draw(st.sampled_from(("serial", "pipeline", "batch")))
    config = FusionConfig(
        engine=engine, executor=executor,
        fusion_shape=FrameShape(width, height), levels=levels,
        registration=registration, temporal=temporal,
        quality_metrics=False,
    )
    graph = FusionGraph.canonical(registration=registration,
                                  temporal=temporal)

    n_custom = draw(st.integers(0, 3))
    for i in range(n_custom):
        anchor = draw(st.sampled_from(
            [name for name in graph.names() if name != "finalize"]))
        batchable = draw(st.booleans())
        graph.insert_after(anchor, Stage(
            name=f"custom{i}", fn=_noop, batchable=batchable))
    return graph, config


class TestPlannerProperties:
    @settings(**_SETTINGS)
    @given(pair=graph_and_config())
    def test_every_stage_scheduled_exactly_once(self, pair):
        graph, config = pair
        plan = Planner().lower(graph, config)
        assert sorted(plan.schedule) == sorted(graph.names())
        assert len(set(plan.schedule)) == len(plan.schedule)
        # the role partition covers the schedule exactly once too
        partition = (*plan.head, *plan.parallel, *plan.mid, *plan.tail)
        assert sorted(partition) == sorted(plan.schedule)
        assert plan.compute == tuple(
            n for n in plan.schedule
            if n not in plan.head and n not in plan.tail)

    @settings(**_SETTINGS)
    @given(pair=graph_and_config())
    def test_schedule_respects_edge_order(self, pair):
        graph, config = pair
        plan = Planner().lower(graph, config)
        position = {name: i for i, name in enumerate(plan.schedule)}
        for stage in graph.stages():
            for dep in stage.after:
                assert position[dep] < position[stage.name], \
                    f"{stage.name} scheduled before its dependency {dep}"
        # within the executable regions the same discipline holds:
        # head before compute before tail
        if plan.compute:
            first_compute = min(position[n] for n in plan.compute)
            assert all(position[n] < first_compute for n in plan.head)
            assert all(position[n] > max(position[c]
                                         for c in plan.compute)
                       for n in plan.tail)

    @settings(**_SETTINGS)
    @given(pair=graph_and_config())
    def test_plan_cost_is_sum_of_stage_costs(self, pair):
        graph, config = pair
        plan = Planner().lower(graph, config)
        total = sum(plan.node(name).model_seconds
                    for name in plan.schedule)
        assert plan.model_seconds_per_frame == pytest.approx(total)
        assert all(plan.node(name).model_seconds >= 0
                   for name in plan.schedule)
        # host-side stages never carry engine cost
        for name in plan.schedule:
            node = plan.node(name)
            if node.engine == "host":
                assert node.model_seconds == 0.0

    @settings(**_SETTINGS)
    @given(pair=graph_and_config())
    def test_ordered_stages_never_join_the_parallel_wave(self, pair):
        graph, config = pair
        plan = Planner().lower(graph, config)
        for name in plan.parallel:
            assert not graph.stage(name).ordered
        if plan.sequential_mid:
            assert plan.parallel == ()
        # an ordered stage strictly between head and tail forces the
        # sequential mid chain, and vice versa
        ordered_compute = [n for n in plan.compute
                           if graph.stage(n).ordered]
        assert bool(ordered_compute) == plan.sequential_mid

    @settings(**_SETTINGS)
    @given(pair=graph_and_config())
    def test_batch_schedule_covers_compute_exactly_once(self, pair):
        graph, config = pair
        plan = Planner().lower(graph, config)
        scheduled = [name for names, _ in plan.batch_schedule
                     for name in names]
        if plan.sequential_mid:
            assert plan.batch_schedule == ()
        else:
            assert sorted(scheduled) == sorted(plan.compute)
        for names, mode in plan.batch_schedule:
            assert mode in ("core", "stacked", "frame")
            if mode == "stacked":
                assert all(graph.stage(n).batchable for n in names)
            if mode == "frame":
                assert all(not graph.stage(n).batchable for n in names)

    @settings(**_SETTINGS)
    @given(pair=graph_and_config())
    def test_lowering_is_deterministic(self, pair):
        graph, config = pair
        first = Planner().lower(graph, config)
        second = Planner().lower(graph.copy(), config)
        assert first.schedule == second.schedule
        assert first.batch_schedule == second.batch_schedule
        assert {n: first.node(n).engine for n in first.schedule} \
            == {n: second.node(n).engine for n in second.schedule}
        assert first.model_seconds_per_frame \
            == second.model_seconds_per_frame
