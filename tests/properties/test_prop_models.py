"""Property-based tests of the platform models and schedulers."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import CostModelScheduler
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.driver import PassCost, WaveletDriver
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine
from repro.hw.trace import ScheduleTracer
from repro.hw.work import WorkModel
from repro.types import FrameShape

_SETTINGS = dict(deadline=None, max_examples=20)


class TestWorkModelProperties:
    @settings(**_SETTINGS)
    @given(width=st.integers(16, 128), height=st.integers(16, 128),
           levels=st.integers(1, 4))
    def test_counts_positive_and_symmetric(self, width, height, levels):
        work = WorkModel(FrameShape(width, height), levels=levels)
        assert work.forward_macs() > 0
        assert work.forward_invocations() > 0
        # inverse mirrors forward structurally
        assert work.inverse_invocations() == work.forward_invocations()

    @settings(**_SETTINGS)
    @given(width=st.integers(16, 64), height=st.integers(16, 64),
           levels=st.integers(1, 3))
    def test_macs_monotone_in_size(self, width, height, levels):
        small = WorkModel(FrameShape(width, height), levels=levels)
        large = WorkModel(FrameShape(width + 8, height + 8), levels=levels)
        assert large.forward_macs() > small.forward_macs()
        assert large.fusion_coefficients() >= small.fusion_coefficients()

    @settings(**_SETTINGS)
    @given(width=st.integers(16, 64), height=st.integers(16, 64))
    def test_deeper_transforms_cost_more(self, width, height):
        shallow = WorkModel(FrameShape(width, height), levels=1)
        deep = WorkModel(FrameShape(width, height), levels=3)
        assert deep.forward_macs() > shallow.forward_macs()


class TestTimingModelProperties:
    @settings(**_SETTINGS)
    @given(width=st.integers(24, 96), height=st.integers(24, 96))
    def test_breakdown_components_nonnegative(self, width, height):
        shape = FrameShape(width, height)
        for engine in (NeonEngine(), FpgaEngine()):
            for breakdown in (engine.forward_time(shape),
                              engine.inverse_time(shape)):
                assert breakdown.compute_s >= 0
                assert breakdown.transfer_s >= 0
                assert breakdown.command_s >= 0
                assert breakdown.total_s > 0

    @settings(**_SETTINGS)
    @given(scale=st.floats(0.25, 4.0))
    def test_driver_cost_scales_fpga_monotonically(self, scale):
        cal = DEFAULT_CALIBRATION.with_overrides(
            fpga_driver_invocation_s=(
                DEFAULT_CALIBRATION.fpga_driver_invocation_s * scale))
        scaled = FpgaEngine(calibration=cal)
        base = FpgaEngine()
        shape = FrameShape(48, 48)
        if scale > 1.0:
            assert (scaled.forward_time(shape).total_s
                    > base.forward_time(shape).total_s)
        elif scale < 1.0:
            assert (scaled.forward_time(shape).total_s
                    < base.forward_time(shape).total_s)


class TestSchedulerProperties:
    @settings(**_SETTINGS)
    @given(px=st.integers(24, 96), levels=st.integers(1, 4))
    def test_choice_is_argmin(self, px, levels):
        scheduler = CostModelScheduler(objective="time")
        decision = scheduler.choose(FrameShape(px, px), levels)
        assert decision.alternatives[decision.engine.name] == min(
            decision.alternatives.values())

    @settings(**_SETTINGS)
    @given(px=st.integers(24, 96))
    def test_energy_never_cheaper_than_power_floor(self, px):
        scheduler = CostModelScheduler(objective="energy")
        decision = scheduler.choose(FrameShape(px, px))
        # energy and time predictions must be mutually consistent
        assert decision.predicted_mj > decision.predicted_s * 0.4 * 1e3
        assert decision.predicted_mj < decision.predicted_s * 0.7 * 1e3


class TestScheduleTraceProperties:
    @settings(**_SETTINGS)
    @given(costs=st.lists(
        st.tuples(st.floats(0, 5e-5), st.floats(0, 5e-5),
                  st.floats(0, 5e-5), st.floats(0, 5e-5)),
        min_size=1, max_size=30))
    def test_trace_always_matches_closed_form(self, costs):
        passes = [PassCost(*c) for c in costs]
        for db in (True, False):
            tracer = ScheduleTracer(double_buffered=db)
            makespan = tracer.run(passes)
            closed = WaveletDriver().schedule(passes,
                                              double_buffered=db).total_s
            assert np.isclose(makespan, closed, rtol=1e-9, atol=1e-12)

    @settings(**_SETTINGS)
    @given(costs=st.lists(
        st.tuples(st.floats(1e-7, 5e-5), st.floats(1e-7, 5e-5),
                  st.floats(1e-7, 5e-5), st.floats(1e-7, 5e-5)),
        min_size=2, max_size=25))
    def test_lane_events_never_overlap(self, costs):
        passes = [PassCost(*c) for c in costs]
        tracer = ScheduleTracer(double_buffered=True)
        tracer.run(passes)
        for lane in ("ps-user", "pl-engine"):
            spans = sorted((e.start_s, e.end_s) for e in tracer.events
                           if e.lane == lane)
            for (_, end0), (start1, _) in zip(spans, spans[1:]):
                assert start1 >= end0 - 1e-12


class TestMetricProperties:
    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**16), scale=st.floats(1.0, 200.0))
    def test_qabf_bounded_and_scale_aware(self, seed, scale):
        from repro.core.metrics import petrovic_qabf
        rng = np.random.default_rng(seed)
        a = rng.uniform(0, scale, (24, 24))
        b = rng.uniform(0, scale, (24, 24))
        fused = (a + b) / 2
        q = petrovic_qabf(a, b, fused)
        assert 0.0 <= q <= 1.0

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**16))
    def test_ssim_symmetric(self, seed):
        from repro.core.metrics import ssim
        rng = np.random.default_rng(seed)
        a = rng.uniform(0, 255, (20, 20))
        b = rng.uniform(0, 255, (20, 20))
        assert np.isclose(ssim(a, b), ssim(b, a), atol=1e-9)
