"""Property-based tests: BT.656 codec, FIFO, driver schedule, HLS engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.hw.driver import PassCost, WaveletDriver
from repro.hw.hls import HlsWaveletEngine
from repro.video.bt656 import Bt656Config, Bt656Decoder, encode_frame
from repro.video.fifo import FrameFifo

_SETTINGS = dict(deadline=None, max_examples=25)


class TestBt656Roundtrip:
    @settings(**_SETTINGS)
    @given(
        rows=st.integers(4, 24),
        cols=st.integers(8, 48),
        data=st.data(),
    )
    def test_any_frame_survives_the_codec(self, rows, cols, data):
        frame = data.draw(hnp.arrays(np.uint8, (rows, cols),
                                     elements=st.integers(1, 254)))
        config = Bt656Config(active_width=cols, active_lines=rows,
                             vblank_lines=2, hblank_samples=4)
        decoded = Bt656Decoder(config).push_bytes(encode_frame(frame, config))
        assert len(decoded) == 1
        assert np.array_equal(decoded[0], frame)

    @settings(**_SETTINGS)
    @given(chunk=st.integers(1, 97))
    def test_chunking_never_changes_the_result(self, chunk):
        rng = np.random.default_rng(5)
        config = Bt656Config(active_width=32, active_lines=8,
                             vblank_lines=2, hblank_samples=4)
        frame = rng.integers(1, 255, (8, 32)).astype(np.uint8)
        stream = encode_frame(frame, config)
        decoder = Bt656Decoder(config)
        out = []
        for i in range(0, len(stream), chunk):
            out.extend(decoder.push_bytes(stream[i:i + chunk]))
        assert len(out) == 1 and np.array_equal(out[0], frame)


class TestFifoInvariants:
    @settings(**_SETTINGS)
    @given(
        capacity=st.integers(1, 4),
        ops=st.lists(st.booleans(), min_size=1, max_size=60),
    )
    def test_conservation_and_order(self, capacity, ops):
        """accepted == popped + occupancy, and pops come out FIFO."""
        fifo = FrameFifo(capacity=capacity)
        pushed_ids = []
        popped_ids = []
        next_id = 0
        for is_push in ops:
            if is_push:
                if fifo.push(np.full((1, 1), next_id)):
                    pushed_ids.append(next_id)
                next_id += 1
            else:
                frame = fifo.pop()
                if frame is not None:
                    popped_ids.append(int(frame[0, 0]))
        assert popped_ids == pushed_ids[: len(popped_ids)]
        assert fifo.stats.accepted == len(popped_ids) + fifo.occupancy
        assert fifo.occupancy <= capacity


class TestDriverSchedule:
    @settings(**_SETTINGS)
    @given(
        costs=st.lists(
            st.tuples(
                st.floats(0, 1e-4), st.floats(0, 1e-4),
                st.floats(0, 1e-4), st.floats(0, 1e-4),
            ),
            min_size=1, max_size=40,
        )
    )
    def test_double_buffering_never_slower_and_bounded_below(self, costs):
        driver = WaveletDriver()
        passes = [PassCost(ps_in_s=a, ps_out_s=b, hw_s=c, cmd_s=d)
                  for a, b, c, d in costs]
        serial = driver.schedule(passes, double_buffered=False).total_s
        pipelined = driver.schedule(passes, double_buffered=True).total_s
        assert pipelined <= serial + 1e-12
        hw_floor = sum(p.hw_s + p.cmd_s for p in passes)
        assert pipelined >= hw_floor - 1e-12


class TestHlsEngineMatchesNumpy:
    @settings(**_SETTINGS)
    @given(
        taps=st.sampled_from([4, 8, 12, 16]),
        out_len=st.integers(4, 40),
        seed=st.integers(0, 2**16),
    )
    def test_forward_line_is_a_decimated_fir(self, taps, out_len, seed):
        rng = np.random.default_rng(seed)
        engine = HlsWaveletEngine()
        lp = rng.standard_normal(taps).astype(np.float32)
        hp = rng.standard_normal(taps).astype(np.float32)
        engine.load_coefficients(lp, hp)
        x = rng.standard_normal((out_len - 1) * 2 + taps).astype(np.float32)
        lp_out, hp_out, _ = engine.forward_line(x, out_len, step=2)
        for m in range(out_len):
            window = x[2 * m: 2 * m + taps].astype(np.float64)
            assert np.isclose(lp_out[m], float(window @ lp[::-1]), atol=1e-3)
            assert np.isclose(hp_out[m], float(window @ hp[::-1]), atol=1e-3)
