"""Property-based tests of fusion rules and the fusion pipeline."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.fusion import fuse_images
from repro.core.fusion_rules import MaxMagnitudeRule, WeightedRule
from repro.dtcwt import Dtcwt2D

_SETTINGS = dict(deadline=None, max_examples=20)


def small_images(side=24):
    return hnp.arrays(
        dtype=np.float64, shape=(side, side),
        elements=st.floats(-255, 255, allow_nan=False, allow_infinity=False),
    )


class TestMaxMagnitudeProperties:
    @settings(**_SETTINGS)
    @given(a=small_images(), b=small_images())
    def test_selection_closed_over_inputs(self, a, b):
        """Every fused coefficient comes from one of the two pyramids."""
        t = Dtcwt2D(levels=2)
        pa, pb = t.forward(a), t.forward(b)
        fused = MaxMagnitudeRule().fuse(pa, pb)
        for level in range(2):
            from_a = np.isclose(fused.highpasses[level], pa.highpasses[level])
            from_b = np.isclose(fused.highpasses[level], pb.highpasses[level])
            assert np.all(from_a | from_b)

    @settings(**_SETTINGS)
    @given(a=small_images(), b=small_images())
    def test_idempotent(self, a, b):
        """fuse(fuse(A,B), fuse(A,B)) == fuse(A,B)."""
        t = Dtcwt2D(levels=2)
        rule = MaxMagnitudeRule()
        once = rule.fuse(t.forward(a), t.forward(b))
        twice = rule.fuse(once, once)
        for level in range(2):
            assert np.array_equal(once.highpasses[level],
                                  twice.highpasses[level])

    @settings(**_SETTINGS)
    @given(a=small_images())
    def test_self_fusion_reconstructs_input(self, a):
        fused = fuse_images(a, a, levels=2)
        scale = max(1.0, float(np.max(np.abs(a))))
        assert np.max(np.abs(fused - a)) < 1e-8 * scale


class TestWeightedProperties:
    @settings(**_SETTINGS)
    @given(a=small_images(), b=small_images(),
           alpha=st.floats(0.0, 1.0, allow_nan=False))
    def test_blend_reconstruction_is_linear_blend(self, a, b, alpha):
        """Weighted coefficient fusion == pixel-domain blend (the whole
        transform chain is linear)."""
        fused = fuse_images(a, b, levels=2, rule=WeightedRule(alpha=alpha))
        expected = alpha * a + (1 - alpha) * b
        scale = max(1.0, float(np.max(np.abs(expected))))
        assert np.max(np.abs(fused - expected)) < 1e-7 * scale


class TestOutputBounds:
    @settings(**_SETTINGS)
    @given(a=small_images(), b=small_images())
    def test_fused_output_is_finite(self, a, b):
        fused = fuse_images(a, b, levels=2)
        assert np.all(np.isfinite(fused))
        # output magnitude cannot exceed combined input scale wildly
        bound = 4.0 * (np.max(np.abs(a)) + np.max(np.abs(b)) + 1.0)
        assert np.max(np.abs(fused)) < bound
