"""Property-based tests of the precision datapath contracts.

Two distinct guarantees, tested separately:

* **Tolerance parity** (documented in README "Precision & compiled
  backends"): for 0-255-scale inputs the float32 datapath's outputs
  stay within 1e-3 max-abs of the float64 datapath's — a bound, not
  bitwise (measured worst case is ~1.1e-4; the 1e-3 bar leaves ~10x
  margin so the contract is stable, not flaky).
* **Kernel-swap bitwise parity**: at a *fixed* dtype, the JIT backend
  is bit-for-bit identical to the NumPy backend — swapping the kernel
  implementation is never a numerics change.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.fusion import ImageFusion
from repro.dtcwt import Dtcwt2D, JitBackend, NumpyBackend
from repro.hw.registry import create_engine

_SETTINGS = dict(deadline=None, max_examples=25)

#: the documented tolerance-parity bound for 0-255-scale inputs
MAX_ABS_F32_VS_F64 = 1e-3


def pixel_images(min_side=8, max_side=40):
    """0-255-scale frames — the scale the documented bound applies to."""
    sides = st.integers(min_side, max_side)
    return sides.flatmap(
        lambda rows: sides.flatmap(
            lambda cols: hnp.arrays(
                dtype=np.float64,
                shape=(rows, cols),
                elements=st.floats(0.0, 255.0, allow_nan=False,
                                   allow_infinity=False, width=64),
            )
        )
    )


class TestTolerantFloat32Parity:
    @settings(**_SETTINGS)
    @given(image=pixel_images(), levels=st.integers(1, 3))
    def test_roundtrip_within_documented_bound(self, image, levels):
        engine = create_engine("arm")
        t64 = engine.transform(levels, precision="float64")
        t32 = engine.transform(levels, precision="float32")
        r64 = t64.inverse(t64.forward(image))
        r32 = t32.inverse(t32.forward(image))
        err = np.max(np.abs(r64 - np.asarray(r32, dtype=np.float64)))
        assert err <= MAX_ABS_F32_VS_F64

    @settings(**_SETTINGS)
    @given(visible=pixel_images(min_side=12, max_side=32),
           levels=st.integers(1, 2))
    def test_fused_output_within_documented_bound(self, visible, levels):
        rng = np.random.default_rng(int(np.sum(visible)) % (2 ** 31))
        thermal = rng.uniform(0.0, 255.0, size=visible.shape)
        engine = create_engine("arm")
        f64 = ImageFusion(
            transform=engine.transform(levels, precision="float64"))
        f32 = ImageFusion(
            transform=engine.transform(levels, precision="float32"))
        a = np.asarray(f64.fuse(visible, thermal).fused, dtype=np.float64)
        b = np.asarray(f32.fuse(visible, thermal).fused, dtype=np.float64)
        assert np.max(np.abs(a - b)) <= MAX_ABS_F32_VS_F64


class TestKernelSwapBitwiseParity:
    @settings(**_SETTINGS)
    @given(image=pixel_images(),
           levels=st.integers(1, 3),
           precision=st.sampled_from([np.float32, np.float64]))
    def test_jit_equals_numpy_at_same_dtype(self, image, levels,
                                            precision):
        ref = Dtcwt2D(levels=levels, backend=NumpyBackend(dtype=precision))
        jit = Dtcwt2D(levels=levels, backend=JitBackend(dtype=precision))
        pr, pj = ref.forward(image), jit.forward(image)
        assert np.array_equal(pr.lowpass, pj.lowpass)
        for hr, hj in zip(pr.highpasses, pj.highpasses):
            assert np.array_equal(hr, hj)
        assert np.array_equal(ref.inverse(pr), jit.inverse(pj))

    @settings(**_SETTINGS)
    @given(stack=hnp.arrays(
        dtype=np.float64, shape=st.tuples(st.integers(1, 3),
                                          st.integers(8, 20),
                                          st.integers(8, 20)),
        elements=st.floats(-255.0, 255.0, allow_nan=False,
                           allow_infinity=False, width=64)))
    def test_jit_equals_numpy_on_batched_stacks(self, stack):
        """Leading batch axes ride the same per-element arithmetic."""
        ref = Dtcwt2D(levels=2, backend=NumpyBackend(dtype=np.float32))
        jit = Dtcwt2D(levels=2, backend=JitBackend(dtype=np.float32))
        pr = ref.forward_batch(stack)
        pj = jit.forward_batch(stack)
        assert np.array_equal(pr.lowpass, pj.lowpass)
        for hr, hj in zip(pr.highpasses, pj.highpasses):
            assert np.array_equal(hr, hj)
