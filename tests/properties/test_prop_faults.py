"""Property-based tests: fault-injection channel contracts.

The :class:`DropoutChannel` semantics are pinned here: the expected
byte-loss fraction equals ``dropout_rate`` independent of
``burst_bytes`` and stream length, and the :class:`FaultStats` ledger
is exact (``bytes_seen == bytes_dropped + emitted``) for every
(rate, burst, length) combination.
"""

from hypothesis import given, settings, strategies as st

from repro.video.faults import DropoutChannel

_SETTINGS = dict(deadline=None, max_examples=40)


class TestDropoutChannelProperties:
    @settings(**_SETTINGS)
    @given(
        rate=st.floats(0.05, 0.9),
        burst=st.integers(1, 64),
        length=st.integers(1024, 32768),
        seed=st.integers(0, 2**16),
    )
    def test_loss_fraction_and_ledger(self, rate, burst, length, seed):
        channel = DropoutChannel(dropout_rate=rate, burst_bytes=burst,
                                 seed=seed)
        data = bytes(length)
        out = channel.transmit(data)
        stats = channel.stats
        # ledger exact: every byte is either delivered or accounted
        # as dropped, per call
        assert stats.bytes_seen == length
        assert stats.bytes_dropped + len(out) == length
        # measured loss within statistical tolerance of the rate; the
        # per-decision variance scales with the burst size
        fraction = stats.bytes_dropped / length
        sigma = (rate * (1.0 - rate) * burst / length) ** 0.5
        assert abs(fraction - rate) <= max(0.03, 8.0 * sigma)

    @settings(**_SETTINGS)
    @given(
        rate=st.floats(0.05, 0.9),
        burst=st.integers(1, 64),
        seed=st.integers(0, 2**16),
        chunks=st.lists(st.integers(0, 4096), min_size=1, max_size=8),
    )
    def test_ledger_exact_across_chunked_calls(self, rate, burst, seed,
                                               chunks):
        channel = DropoutChannel(dropout_rate=rate, burst_bytes=burst,
                                 seed=seed)
        emitted = 0
        for n in chunks:
            emitted += len(channel.transmit(bytes(n)))
        stats = channel.stats
        assert stats.bytes_seen == sum(chunks)
        assert stats.bytes_dropped + emitted == stats.bytes_seen

    @settings(**_SETTINGS)
    @given(burst=st.integers(1, 64), length=st.integers(0, 4096))
    def test_zero_rate_is_lossless(self, burst, length):
        channel = DropoutChannel(dropout_rate=0.0, burst_bytes=burst)
        data = bytes(range(256)) * (length // 256 + 1)
        data = data[:length]
        assert channel.transmit(data) == data
        assert channel.stats.bytes_dropped == 0
