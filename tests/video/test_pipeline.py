"""End-to-end capture pipeline behaviour."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.hw.neon import NeonEngine
from repro.types import FrameShape
from repro.video.pipeline import FusionPipeline
from repro.video.scene import SyntheticScene


@pytest.fixture
def pipeline(scene):
    return FusionPipeline(engine=NeonEngine(), fusion_shape=FrameShape(40, 40),
                          levels=2, scene=scene)


class TestPipeline:
    def test_produces_requested_frames(self, pipeline):
        report = pipeline.run(2)
        assert report.frames == 2
        assert len(report.records) == 2

    def test_fused_frames_are_uint8_at_fusion_shape(self, pipeline):
        report = pipeline.run(1)
        frame = report.records[0].frame
        assert frame.pixels.shape == (40, 40)
        assert frame.pixels.dtype == np.uint8
        assert frame.source == "fused"

    def test_model_costs_accumulate(self, pipeline):
        report = pipeline.run(2)
        assert report.model_seconds_total > 0
        assert report.model_millijoules_total > 0
        assert report.model_fps > 0
        per_frame = report.records[0].model_seconds
        assert np.isclose(report.model_seconds_total, 2 * per_frame)

    def test_no_decode_errors_on_clean_stream(self, pipeline):
        report = pipeline.run(2)
        assert report.decode_errors == 0

    def test_fused_output_combines_modalities(self, pipeline):
        record = pipeline.run(1).records[0]
        fused = record.frame.pixels.astype(float)
        # correlated with both sources
        corr_vis = np.corrcoef(fused.ravel(), record.visible.ravel())[0, 1]
        corr_th = np.corrcoef(fused.ravel(), record.thermal.ravel())[0, 1]
        assert corr_vis > 0.2
        assert corr_th > 0.2

    def test_bad_frame_count(self, pipeline):
        with pytest.raises(VideoError):
            pipeline.run(0)

    def test_keep_records_off_saves_memory(self, scene):
        pipe = FusionPipeline(engine=NeonEngine(),
                              fusion_shape=FrameShape(40, 40),
                              levels=2, scene=scene, keep_records=False)
        report = pipe.run(2)
        assert report.frames == 2
        assert report.records == []


class TestPipelineExecutorParity:
    """run() now routes through the repro.exec layer; it must stay
    numerically identical to the manual step() loop it replaced, for
    every executor."""

    @staticmethod
    def _make(executor):
        from repro.video.scene import SyntheticScene
        return FusionPipeline(engine=NeonEngine(),
                              fusion_shape=FrameShape(40, 40), levels=2,
                              scene=SyntheticScene(width=96, height=80,
                                                   seed=11),
                              executor=executor)

    @pytest.fixture(scope="class")
    def stepped_records(self):
        pipeline = self._make("serial")
        records = []
        while len(records) < 3:
            record = pipeline.step()
            if record is not None:
                records.append(record)
        return records

    @pytest.mark.parametrize("executor", ["serial", "pipeline", "hetero"])
    def test_run_matches_manual_step_loop(self, executor, stepped_records):
        report = self._make(executor).run(3)
        assert report.frames == 3
        for ref, got in zip(stepped_records, report.records):
            assert np.array_equal(ref.frame.pixels, got.frame.pixels)
            assert ref.model_seconds == got.model_seconds
            assert ref.model_millijoules == got.model_millijoules
            assert ref.frame.frame_id == got.frame.frame_id
