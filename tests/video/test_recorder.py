"""Stream recording and playback."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.recorder import PgmSequenceSource, StreamRecorder
from repro.video.scene import SyntheticScene
from repro.video.webcam import WebcamSimulator


class TestRecorder:
    def test_record_and_play_back(self, tmp_path, rng):
        frames = [rng.integers(0, 255, (24, 32)).astype(np.uint8)
                  for _ in range(4)]
        with StreamRecorder(tmp_path / "run", fps=25.0) as recorder:
            for frame in frames:
                recorder.write(frame)
        source = PgmSequenceSource(tmp_path / "run")
        assert len(source) == 4
        for original in frames:
            played = source.capture()
            assert np.array_equal(played.pixels, original)

    def test_timestamps_follow_fps(self, tmp_path, rng):
        with StreamRecorder(tmp_path / "run", fps=10.0) as recorder:
            recorder.write(rng.integers(0, 255, (8, 8)).astype(np.uint8))
            recorder.write(rng.integers(0, 255, (8, 8)).astype(np.uint8))
        source = PgmSequenceSource(tmp_path / "run")
        assert source.capture().timestamp_s == 0.0
        assert np.isclose(source.capture().timestamp_s, 0.1)

    def test_rgb_frames_stored_as_luma(self, tmp_path, scene):
        camera = WebcamSimulator(scene)
        with StreamRecorder(tmp_path / "rgb") as recorder:
            recorder.write(camera.capture())
        played = PgmSequenceSource(tmp_path / "rgb").capture()
        assert played.pixels.ndim == 2

    def test_exhaustion_raises_without_loop(self, tmp_path, rng):
        with StreamRecorder(tmp_path / "one") as recorder:
            recorder.write(rng.integers(0, 255, (8, 8)).astype(np.uint8))
        source = PgmSequenceSource(tmp_path / "one")
        source.capture()
        with pytest.raises(VideoError):
            source.capture()

    def test_loop_wraps_around(self, tmp_path, rng):
        with StreamRecorder(tmp_path / "loop") as recorder:
            recorder.write(rng.integers(0, 255, (8, 8)).astype(np.uint8))
        source = PgmSequenceSource(tmp_path / "loop", loop=True)
        first = source.capture()
        again = source.capture()
        assert np.array_equal(first.pixels, again.pixels)
        assert again.frame_id == 0

    def test_rewind(self, tmp_path, rng):
        with StreamRecorder(tmp_path / "rw") as recorder:
            for _ in range(2):
                recorder.write(rng.integers(0, 255, (8, 8)).astype(np.uint8))
        source = PgmSequenceSource(tmp_path / "rw")
        source.capture()
        source.rewind()
        assert source.capture().frame_id == 0

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(VideoError):
            PgmSequenceSource(tmp_path / "empty")

    def test_manifest_frame_count_checked(self, tmp_path, rng):
        run = tmp_path / "bad"
        with StreamRecorder(run) as recorder:
            recorder.write(rng.integers(0, 255, (8, 8)).astype(np.uint8))
        manifest = run / "manifest.txt"
        manifest.write_text(manifest.read_text().replace("frames 1",
                                                         "frames 2"))
        with pytest.raises(VideoError):
            PgmSequenceSource(run)

    def test_fps_validation(self, tmp_path):
        with pytest.raises(VideoError):
            StreamRecorder(tmp_path / "x", fps=0)
