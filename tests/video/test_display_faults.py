"""Display compositor and fault-injection substrate."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.bt656 import Bt656Config, Bt656Decoder, encode_frame
from repro.video.display import (
    histogram_strip,
    render_text,
    stamp_text,
    triptych,
)
from repro.video.faults import (
    DropoutChannel,
    NoisyByteChannel,
    StallingCamera,
    corrupt_stream,
)
from repro.video.webcam import WebcamSimulator


class TestFont:
    def test_render_produces_glyph_grid(self):
        out = render_text("AB")
        assert out.shape == (7, 11)  # two glyphs + 1 px spacing
        assert out.max() == 255

    def test_unknown_characters_become_spaces(self):
        assert np.array_equal(render_text("@"), render_text(" "))

    def test_stamp_overlays_without_resizing(self, rng):
        frame = rng.integers(0, 200, (40, 80)).astype(np.uint8)
        stamped = stamp_text(frame, "FUSED")
        assert stamped.shape == frame.shape
        assert (stamped != frame).any()

    def test_stamp_rejects_oversized_caption(self):
        with pytest.raises(VideoError):
            stamp_text(np.zeros((5, 5), dtype=np.uint8), "TOODEEP", row=10)


class TestTriptych:
    def test_panel_layout(self, rng):
        frames = [rng.uniform(0, 255, (48, 64)) for _ in range(3)]
        panel = triptych(*frames, with_histograms=False, separator=4)
        assert panel.shape == (48, 64 * 3 + 8)
        assert panel.dtype == np.uint8

    def test_histogram_rows_added(self, rng):
        frames = [rng.uniform(0, 255, (48, 64)) for _ in range(3)]
        panel = triptych(*frames, with_histograms=True)
        assert panel.shape[0] == 48 + 1 + 24

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(VideoError):
            triptych(np.zeros((8, 8)), np.zeros((8, 8)), np.zeros((9, 8)))

    def test_caption_count_enforced(self, rng):
        frames = [rng.uniform(0, 255, (32, 32)) for _ in range(3)]
        with pytest.raises(VideoError):
            triptych(*frames, captions=("A", "B"))

    def test_histogram_strip_peaks_track_content(self):
        dark = np.zeros((16, 16))
        strip = histogram_strip(dark, height=10, bins=8)
        assert strip[:, 0].max() > 0      # all mass in the first bin
        assert strip[:, -1].max() == 0


class TestNoisyChannel:
    def test_zero_rate_is_transparent(self):
        channel = NoisyByteChannel(bit_error_rate=0.0)
        data = bytes(range(256))
        assert channel.transmit(data) == data

    def test_flip_statistics(self):
        channel = NoisyByteChannel(bit_error_rate=0.01, seed=1)
        channel.transmit(bytes(10000))
        # expect ~800 flips out of 80k bits
        assert 500 < channel.stats.bits_flipped < 1100

    def test_decoder_survives_realistic_noise(self, rng):
        """1e-5 BER: frames keep decoding; error counters move, crash
        never happens."""
        config = Bt656Config(active_width=64, active_lines=32,
                             vblank_lines=4, hblank_samples=8)
        channel = NoisyByteChannel(bit_error_rate=1e-5, seed=3)
        decoder = Bt656Decoder(config)
        decoded = 0
        for _ in range(10):
            frame = rng.integers(1, 255, (32, 64)).astype(np.uint8)
            stream = corrupt_stream(encode_frame(frame, config), [channel])
            decoded += len(decoder.push_bytes(stream))
        assert decoded >= 8  # the occasional frame may resync away

    def test_heavy_noise_degrades_but_never_crashes(self, rng):
        config = Bt656Config(active_width=64, active_lines=32,
                             vblank_lines=4, hblank_samples=8)
        channel = NoisyByteChannel(bit_error_rate=1e-3, seed=4)
        decoder = Bt656Decoder(config)
        for _ in range(5):
            frame = rng.integers(1, 255, (32, 64)).astype(np.uint8)
            decoder.push_bytes(corrupt_stream(encode_frame(frame, config),
                                              [channel]))
        assert (decoder.stats.xy_errors + decoder.stats.corrected_xy
                + decoder.stats.resyncs) > 0

    def test_rate_validation(self):
        with pytest.raises(VideoError):
            NoisyByteChannel(bit_error_rate=1.5)


class TestDropoutChannel:
    def test_drops_accounted(self):
        channel = DropoutChannel(dropout_rate=0.2, burst_bytes=32, seed=2)
        data = bytes(4096)
        out = channel.transmit(data)
        assert len(out) + channel.stats.bytes_dropped == len(data)
        assert channel.stats.bursts > 0

    def test_zero_rate_transparent(self):
        channel = DropoutChannel(dropout_rate=0.0)
        data = bytes(range(100))
        assert channel.transmit(data) == data

    def test_decoder_resyncs_after_dropout(self, rng):
        config = Bt656Config(active_width=64, active_lines=32,
                             vblank_lines=4, hblank_samples=8)
        channel = DropoutChannel(dropout_rate=0.02, burst_bytes=128, seed=5)
        decoder = Bt656Decoder(config)
        got_after = 0
        for i in range(8):
            frame = rng.integers(1, 255, (32, 64)).astype(np.uint8)
            stream = encode_frame(frame, config)
            if i < 4:
                stream = channel.transmit(stream)
            got_after += len(decoder.push_bytes(stream)) if i >= 4 else 0
        assert got_after >= 3  # clean frames decode once the fault clears

    def test_loss_fraction_independent_of_burst(self):
        """The pinned contract: expected loss fraction == dropout_rate
        regardless of burst size (the old per-chunk sampling made the
        realized loss depend on the burst/stream-length interplay)."""
        data = bytes(65536)
        for burst in (1, 8, 64):
            channel = DropoutChannel(dropout_rate=0.3, burst_bytes=burst,
                                     seed=9)
            out = channel.transmit(data)
            fraction = 1.0 - len(out) / len(data)
            sigma = (0.3 * 0.7 * burst / len(data)) ** 0.5
            assert abs(fraction - 0.3) < max(0.02, 6 * sigma)

    def test_total_dropout_loses_everything(self):
        channel = DropoutChannel(dropout_rate=1.0, burst_bytes=16, seed=0)
        assert channel.transmit(bytes(100)) == b""
        assert channel.stats.bytes_dropped == 100
        assert channel.stats.bursts == 7  # ceil(100 / 16)

    def test_validation(self):
        with pytest.raises(VideoError):
            DropoutChannel(dropout_rate=2.0)
        with pytest.raises(VideoError):
            DropoutChannel(dropout_rate=0.1, burst_bytes=0)


class TestStallingCamera:
    def test_repeats_frames_on_stall(self, scene):
        camera = StallingCamera(WebcamSimulator(scene), period=3)
        frames = [camera.capture() for _ in range(6)]
        assert camera.stalls == 2
        # third capture stalled: same content, but a defensive copy —
        # never the same live object
        assert frames[2] is not frames[1]
        assert np.array_equal(frames[2].pixels, frames[1].pixels)
        assert frames[2].frame_id == frames[1].frame_id

    def test_stall_replay_survives_inplace_mutation(self, scene):
        """A consumer that paints on captured frames in place must not
        corrupt the replay the next stall hands out."""
        camera = StallingCamera(WebcamSimulator(scene), period=3)
        first = camera.capture()
        second = camera.capture()
        pristine = second.pixels.copy()
        # the consumer scribbles an overlay onto both frames in place
        first.pixels[:] = 0
        second.pixels[:] = 0
        second.metadata["overlay"] = "painted"
        replay = camera.capture()  # third capture stalls: replays #2
        assert camera.stalls == 1
        assert np.array_equal(replay.pixels, pristine)
        assert "overlay" not in replay.metadata
        # and the replay itself is a fresh copy each time
        replay.pixels[:] = 0
        fresh = camera.capture()  # fourth capture: live again
        assert not np.array_equal(fresh.pixels, np.zeros_like(fresh.pixels))

    def test_stall_copies_bare_arrays(self):
        """Sources that return raw ndarrays get the same protection."""

        class ArrayCamera:
            def __init__(self):
                self.n = 0

            def capture(self):
                self.n += 1
                return np.full((4, 4), float(self.n))

        camera = StallingCamera(ArrayCamera(), period=2)
        first = camera.capture()
        first[:] = -1.0  # consumer mutates in place
        replay = camera.capture()  # second capture stalls: replays #1
        assert camera.stalls == 1
        assert np.array_equal(replay, np.full((4, 4), 1.0))

    def test_period_validation(self, scene):
        with pytest.raises(VideoError):
            StallingCamera(WebcamSimulator(scene), period=1)
