"""Scaler, FIFO handshake and frame utilities."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.fifo import FrameFifo
from repro.video.frames import VideoFrame, center_crop
from repro.video.scaler import VideoScaler, resize_to


class TestScaler:
    def test_paper_geometry(self, rng):
        """720x243 fields to 640x480 frames (Fig. 7's Video_Scale)."""
        scaler = VideoScaler()
        field = rng.integers(0, 255, (243, 720)).astype(np.uint8)
        assert scaler.scale(field).shape == (480, 640)

    def test_identity_scaling(self, rng):
        img = rng.standard_normal((32, 32))
        scaler = VideoScaler(in_shape=(32, 32), out_shape=(32, 32))
        assert np.allclose(scaler.scale(img), img)

    def test_bilinear_interpolates_midpoints(self):
        img = np.array([[0.0, 10.0]])
        scaler = VideoScaler(in_shape=(1, 2), out_shape=(1, 3))
        out = scaler.scale(img)
        assert np.allclose(out, [[0.0, 5.0, 10.0]])

    def test_nearest_preserves_values(self, rng):
        img = rng.integers(0, 255, (10, 10)).astype(np.uint8)
        scaler = VideoScaler(in_shape=(10, 10), out_shape=(25, 25),
                             method="nearest")
        out = scaler.scale(img)
        assert set(np.unique(out)) <= set(np.unique(img))

    def test_uint8_stays_uint8(self, rng):
        img = rng.integers(0, 255, (16, 16)).astype(np.uint8)
        out = resize_to(img, (24, 24))
        assert out.dtype == np.uint8

    def test_wrong_input_shape_rejected(self, rng):
        scaler = VideoScaler(in_shape=(10, 10), out_shape=(20, 20))
        with pytest.raises(VideoError):
            scaler.scale(rng.standard_normal((11, 10)))

    def test_bad_method(self):
        with pytest.raises(VideoError):
            VideoScaler(method="psychic")

    def test_mean_preserved_approximately(self, rng):
        img = rng.uniform(0, 255, (64, 64))
        out = resize_to(img, (96, 96))
        assert abs(out.mean() - img.mean()) < 2.0


class TestFifo:
    def test_handshake_semantics(self):
        """'a new frame will be stored ... only after the previous frame
        is taken' — capacity-1 ready/valid behaviour."""
        fifo = FrameFifo(capacity=1)
        assert fifo.ready and not fifo.valid
        assert fifo.push(np.zeros((2, 2)))
        assert not fifo.ready and fifo.valid
        assert not fifo.push(np.ones((2, 2)))   # dropped at the producer
        assert fifo.stats.dropped == 1
        fifo.pop()
        assert fifo.ready

    def test_order_preserved(self):
        fifo = FrameFifo(capacity=3)
        for i in range(3):
            fifo.push(np.full((1, 1), i))
        assert [int(fifo.pop()[0, 0]) for _ in range(3)] == [0, 1, 2]

    def test_pop_empty_returns_none(self):
        assert FrameFifo().pop() is None

    def test_stats_accounting(self):
        fifo = FrameFifo(capacity=2)
        for i in range(5):
            fifo.push(np.zeros((1, 1)))
        assert fifo.stats.pushed == 5
        assert fifo.stats.dropped == 3
        assert fifo.stats.accepted == 2

    def test_capacity_validation(self):
        with pytest.raises(VideoError):
            FrameFifo(capacity=0)

    def test_clear(self):
        fifo = FrameFifo(capacity=2)
        fifo.push(np.zeros((1, 1)))
        fifo.clear()
        assert not fifo.valid
        assert fifo.occupancy == 0


class TestVideoFrame:
    def test_gray_conversion_bt601(self):
        rgb = np.zeros((2, 2, 3), dtype=np.uint8)
        rgb[..., 1] = 100  # pure green
        frame = VideoFrame(pixels=rgb, timestamp_s=0.0, frame_id=0)
        gray = frame.to_gray()
        assert np.allclose(gray.pixels, round(0.587 * 100))

    def test_gray_of_gray_is_identity(self):
        frame = VideoFrame(pixels=np.zeros((4, 4), dtype=np.uint8),
                           timestamp_s=0.0, frame_id=0)
        assert frame.to_gray() is frame

    def test_dimension_validation(self):
        with pytest.raises(VideoError):
            VideoFrame(pixels=np.zeros(5), timestamp_s=0.0, frame_id=0)

    def test_center_crop(self):
        img = np.arange(36).reshape(6, 6)
        crop = center_crop(img, 2, 2)
        assert crop.shape == (2, 2)
        assert crop[0, 0] == img[2, 2]

    def test_center_crop_pads_small_input(self):
        img = np.ones((2, 2))
        crop = center_crop(img, 4, 4)
        assert crop.shape == (4, 4)
