"""Scene model and camera simulators: modality semantics."""

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.scene import SyntheticScene, WarmObject
from repro.video.thermal import SENSOR_PROFILES, ThermalCameraSimulator
from repro.video.webcam import WebcamSimulator


class TestScene:
    def test_deterministic_given_seed(self):
        a = SyntheticScene(seed=5).render_visible(1.0)
        b = SyntheticScene(seed=5).render_visible(1.0)
        assert np.array_equal(a, b)

    def test_thermal_sees_hot_object(self, scene):
        thermal = scene.render_thermal(0.0)
        row, col = scene.hottest_position(0.0)
        hot_region = thermal[max(0, row - 3): row + 4, max(0, col - 3): col + 4]
        assert hot_region.mean() > np.median(thermal) + 20

    def test_visible_has_more_texture_than_thermal(self, scene):
        """The visible band carries high-frequency structure the LWIR
        optics wash out — the complementarity fusion exploits."""
        vis = scene.render_visible(0.0)
        th = scene.render_thermal(0.0)
        vis_hf = np.abs(np.diff(vis, axis=1)).mean()
        th_hf = np.abs(np.diff(th, axis=1)).mean()
        assert vis_hf > 2.0 * th_hf

    def test_objects_move(self, scene):
        p0 = scene.hottest_position(0.0)
        p1 = scene.hottest_position(5.0)
        assert p0 != p1

    def test_bounce_keeps_objects_in_frame(self):
        obj = WarmObject(x=0.9, y=0.9, vx=0.5, vy=0.7, radius=0.05)
        for t in np.linspace(0, 20, 50):
            x, y = obj.position_at(float(t))
            assert 0.0 <= x <= 1.0
            assert 0.0 <= y <= 1.0

    def test_pixel_ranges(self, scene):
        for render in (scene.render_visible, scene.render_thermal):
            img = render(0.0)
            assert img.min() >= 0.0
            assert img.max() <= 255.0

    def test_size_validation(self):
        with pytest.raises(VideoError):
            SyntheticScene(width=4, height=4)


class TestWebcam:
    def test_frames_are_rgb_uint8(self, scene):
        cam = WebcamSimulator(scene)
        frame = cam.capture()
        assert frame.pixels.dtype == np.uint8
        assert frame.pixels.ndim == 3
        assert frame.source == "webcam"

    def test_timestamps_follow_fps(self, scene):
        cam = WebcamSimulator(scene, fps=30.0)
        t0 = cam.capture().timestamp_s
        t1 = cam.capture().timestamp_s
        assert np.isclose(t1 - t0, 1.0 / 30.0)

    def test_gray_conversion(self, scene):
        frame = WebcamSimulator(scene).capture_gray()
        assert frame.is_gray
        assert frame.pixels.dtype == np.uint8

    def test_auto_exposure_centers_mean(self, scene):
        cam = WebcamSimulator(scene, auto_exposure=True)
        gray = cam.capture_gray().as_float()
        assert 100 < gray.mean() < 156

    def test_fps_validation(self, scene):
        with pytest.raises(VideoError):
            WebcamSimulator(scene, fps=0)


class TestThermalCamera:
    def test_sensor_profiles(self, scene):
        micro = ThermalCameraSimulator(scene, profile="microcam-384")
        assert micro.capture().pixels.shape == SENSOR_PROFILES["microcam-384"]
        lepton = ThermalCameraSimulator(scene, profile="lepton")
        assert lepton.capture().pixels.shape == (60, 80)

    def test_unknown_profile(self, scene):
        with pytest.raises(VideoError):
            ThermalCameraSimulator(scene, profile="predator-vision")

    def test_bt656_stream_decodes(self, scene):
        from repro.video.bt656 import Bt656Decoder
        cam = ThermalCameraSimulator(scene)
        decoder = Bt656Decoder(cam.bt656_config)
        frames = decoder.push_bytes(cam.capture_bt656())
        assert len(frames) == 1
        assert frames[0].shape == (243, 720)

    def test_hot_target_survives_the_chain(self, scene):
        """The hot blob must still be the brightest thing after BT.656
        encode/decode — the fusion input is meaningful."""
        from repro.video.bt656 import Bt656Decoder
        cam = ThermalCameraSimulator(scene)
        decoder = Bt656Decoder(cam.bt656_config)
        frame = decoder.push_bytes(cam.capture_bt656())[0]
        assert frame.max() > np.median(frame) + 30

    def test_frame_ids_increment(self, scene):
        cam = ThermalCameraSimulator(scene)
        assert cam.capture().frame_id == 0
        assert cam.capture().frame_id == 1
