"""BT.656 codec: timing codes, roundtrip fidelity, error resilience."""

import numpy as np
import pytest

from repro.errors import DecodeError
from repro.video.bt656 import (
    Bt656Config,
    Bt656Decoder,
    _VALID_XY,
    _xy_code,
    encode_frame,
)


class TestXyCodes:
    def test_all_eight_codes_distinct(self):
        assert len(_VALID_XY) == 8

    def test_msb_always_set(self):
        for code in _VALID_XY:
            assert code & 0x80

    def test_protection_bits_follow_standard(self):
        """P3=V^H, P2=F^H, P1=F^V, P0=F^V^H (ITU-R BT.656)."""
        for f in (0, 1):
            for v in (0, 1):
                for h in (0, 1):
                    code = _xy_code(f, v, h)
                    assert (code >> 3) & 1 == v ^ h
                    assert (code >> 2) & 1 == f ^ h
                    assert (code >> 1) & 1 == f ^ v
                    assert code & 1 == f ^ v ^ h

    def test_known_sav_eav_values(self):
        """The classic field-0 active-video codes: SAV=0x80, EAV=0x9D."""
        assert _xy_code(0, 0, 0) == 0x80
        assert _xy_code(0, 0, 1) == 0x9D
        assert _xy_code(0, 1, 0) == 0xAB
        assert _xy_code(0, 1, 1) == 0xB6


class TestRoundtrip:
    def test_exact_luma_recovery(self, rng):
        config = Bt656Config(active_width=64, active_lines=32,
                             vblank_lines=4, hblank_samples=8)
        frame = rng.integers(1, 255, (32, 64)).astype(np.uint8)
        stream = encode_frame(frame, config)
        decoded = Bt656Decoder(config).push_bytes(stream)
        assert len(decoded) == 1
        assert np.array_equal(decoded[0], frame)

    def test_default_geometry_is_papers(self):
        config = Bt656Config()
        assert config.active_width == 720
        assert config.active_lines == 243

    def test_payload_never_contains_sync_values(self, rng):
        """0x00/0xFF are reserved; extreme luma must be clipped."""
        config = Bt656Config(active_width=16, active_lines=8,
                             vblank_lines=2, hblank_samples=4)
        frame = np.full((8, 16), 255, dtype=np.uint8)
        stream = encode_frame(frame, config)
        decoded = Bt656Decoder(config).push_bytes(stream)
        assert decoded[0].max() == 0xFE

    def test_resampling_to_active_geometry(self, rng):
        """Arbitrary sensor sizes are fit to the active region."""
        config = Bt656Config(active_width=96, active_lines=64,
                             vblank_lines=2, hblank_samples=4)
        sensor = rng.integers(1, 255, (60, 80)).astype(np.uint8)
        decoded = Bt656Decoder(config).push_bytes(encode_frame(sensor, config))
        assert decoded[0].shape == (64, 96)

    def test_multiple_frames_in_one_stream(self, rng):
        config = Bt656Config(active_width=32, active_lines=16,
                             vblank_lines=2, hblank_samples=4)
        frames = [rng.integers(1, 255, (16, 32)).astype(np.uint8)
                  for _ in range(3)]
        stream = b"".join(encode_frame(f, config) for f in frames)
        decoded = Bt656Decoder(config).push_bytes(stream)
        assert len(decoded) == 3
        for original, got in zip(frames, decoded):
            assert np.array_equal(got, original)

    def test_chunked_delivery(self, rng):
        """Byte-at-a-time delivery must decode identically (it is a
        state machine, like the hardware)."""
        config = Bt656Config(active_width=24, active_lines=8,
                             vblank_lines=2, hblank_samples=4)
        frame = rng.integers(1, 255, (8, 24)).astype(np.uint8)
        stream = encode_frame(frame, config)
        decoder = Bt656Decoder(config)
        collected = []
        for i in range(0, len(stream), 7):
            collected.extend(decoder.push_bytes(stream[i:i + 7]))
        assert len(collected) == 1
        assert np.array_equal(collected[0], frame)

    def test_encoder_rejects_bad_input(self):
        with pytest.raises(DecodeError):
            encode_frame(np.zeros(10))


class TestErrorResilience:
    @pytest.fixture
    def config(self):
        return Bt656Config(active_width=32, active_lines=16,
                           vblank_lines=2, hblank_samples=4)

    def test_single_bit_xy_error_corrected(self, config, rng):
        frame = rng.integers(1, 255, (16, 32)).astype(np.uint8)
        stream = bytearray(encode_frame(frame, config))
        # find an XY code (byte after FF 00 00) and flip one bit
        for i in range(len(stream) - 3):
            if stream[i] == 0xFF and stream[i + 1] == 0 and stream[i + 2] == 0:
                stream[i + 3] ^= 0x02
                break
        decoder = Bt656Decoder(config)
        decoded = decoder.push_bytes(bytes(stream))
        assert decoder.stats.corrected_xy >= 1
        assert len(decoded) == 1

    def test_recovers_after_garbage_prefix(self, config, rng):
        frame = rng.integers(1, 255, (16, 32)).astype(np.uint8)
        garbage = bytes(rng.integers(1, 255, 500).astype(np.uint8))
        stream = garbage + encode_frame(frame, config)
        decoded = Bt656Decoder(config).push_bytes(stream)
        assert len(decoded) >= 1
        assert np.array_equal(decoded[-1], frame)

    def test_truncated_frame_counts_resync(self, config, rng):
        frame = rng.integers(1, 255, (16, 32)).astype(np.uint8)
        stream = encode_frame(frame, config)
        decoder = Bt656Decoder(config)
        decoder.push_bytes(stream[: len(stream) // 2])  # half a frame
        decoder.push_bytes(encode_frame(frame, config))  # then a good one
        assert decoder.stats.resyncs >= 1

    def test_stats_track_lines(self, config, rng):
        frame = rng.integers(1, 255, (16, 32)).astype(np.uint8)
        decoder = Bt656Decoder(config)
        decoder.push_bytes(encode_frame(frame, config))
        assert decoder.stats.lines == 16
        assert decoder.stats.frames == 1
