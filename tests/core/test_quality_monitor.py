"""Sensor-health monitoring over the fusion stream."""

import numpy as np
import pytest

from repro.core.fusion import fuse_images
from repro.core.quality_monitor import (
    ACTION_FUSE,
    ACTION_PASS_VISIBLE,
    ACTION_PASS_THERMAL,
    QualityMonitor,
)
from repro.errors import FusionError
from repro.video.scene import SyntheticScene


@pytest.fixture
def frame_pair():
    scene = SyntheticScene(width=96, height=80, seed=6)
    return scene.render_visible(0.0), scene.render_thermal(0.0)


def _run(monitor, visible, thermal, frames):
    reading = None
    for _ in range(frames):
        fused = fuse_images(visible, thermal, levels=2)
        reading = monitor.observe(visible, thermal, fused)
    return reading


class TestHealthyOperation:
    def test_healthy_stream_recommends_fusion(self, frame_pair):
        visible, thermal = frame_pair
        monitor = QualityMonitor(warmup=2)
        reading = _run(monitor, visible, thermal, 5)
        assert reading.action == ACTION_FUSE
        assert monitor.alarms == 0

    def test_history_and_mean_quality(self, frame_pair):
        visible, thermal = frame_pair
        monitor = QualityMonitor()
        _run(monitor, visible, thermal, 4)
        assert len(monitor.history) == 4
        assert 0.0 <= monitor.mean_qabf() <= 1.0


class TestFailureDetection:
    def test_dead_thermal_flags_and_falls_back(self, frame_pair):
        visible, thermal = frame_pair
        monitor = QualityMonitor(warmup=3)
        _run(monitor, visible, thermal, 3)          # establish baselines
        dead = np.full_like(thermal, 128.0)         # failed sensor: flat
        fused = fuse_images(visible, dead, levels=2)
        reading = monitor.observe(visible, dead, fused)
        assert not reading.thermal_healthy
        assert reading.visible_healthy
        assert reading.action == ACTION_PASS_VISIBLE
        assert monitor.alarms == 1

    def test_dead_visible_prefers_thermal(self, frame_pair):
        visible, thermal = frame_pair
        monitor = QualityMonitor(warmup=3)
        _run(monitor, visible, thermal, 3)
        dead = np.zeros_like(visible)
        fused = fuse_images(dead, thermal, levels=2)
        reading = monitor.observe(dead, thermal, fused)
        assert reading.action == ACTION_PASS_THERMAL

    def test_recovery_clears_the_flag(self, frame_pair):
        visible, thermal = frame_pair
        monitor = QualityMonitor(warmup=3)
        _run(monitor, visible, thermal, 3)
        dead = np.full_like(thermal, 100.0)
        monitor.observe(visible, dead, fuse_images(visible, dead, levels=2))
        reading = _run(monitor, visible, thermal, 1)
        assert reading.action == ACTION_FUSE

    def test_baseline_not_dragged_down_by_dead_sensor(self, frame_pair):
        """A persistently dead channel must keep alarming (the baseline
        only learns from healthy frames)."""
        visible, thermal = frame_pair
        monitor = QualityMonitor(warmup=3)
        _run(monitor, visible, thermal, 3)
        dead = np.full_like(thermal, 100.0)
        for _ in range(6):
            reading = monitor.observe(
                visible, dead, fuse_images(visible, dead, levels=2))
            assert not reading.thermal_healthy


class TestValidation:
    def test_parameters(self):
        with pytest.raises(FusionError):
            QualityMonitor(alpha=0.0)
        with pytest.raises(FusionError):
            QualityMonitor(activity_floor=1.0)
        with pytest.raises(FusionError):
            QualityMonitor(warmup=0)

    def test_mean_quality_needs_frames(self):
        with pytest.raises(FusionError):
            QualityMonitor().mean_qabf()
