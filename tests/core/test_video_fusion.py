"""Temporal video fusion: flicker suppression and scene-change reset."""

import numpy as np
import pytest

from repro.core.fusion import ImageFusion, fuse_images
from repro.core.video_fusion import TemporalFusion, selection_flicker
from repro.errors import FusionError
from repro.video.scene import SyntheticScene


@pytest.fixture
def noisy_static_frames(rng):
    scene = SyntheticScene(width=96, height=80, seed=4)
    visible = scene.render_visible(0.0)
    thermal = scene.render_thermal(0.0)
    vis_frames = [visible + rng.normal(0, 2.0, visible.shape)
                  for _ in range(6)]
    th_frames = [thermal + rng.normal(0, 2.0, thermal.shape)
                 for _ in range(6)]
    return vis_frames, th_frames


class TestTemporalFusion:
    def test_reduces_flicker_on_noisy_static_scene(self, noisy_static_frames):
        vis_frames, th_frames = noisy_static_frames
        independent = selection_flicker(
            lambda a, b: fuse_images(a, b), vis_frames, th_frames)
        temporal = selection_flicker(
            TemporalFusion(smoothing=0.8).fuse, vis_frames, th_frames)
        assert temporal < independent

    def test_zero_smoothing_similar_to_independent(self, noisy_static_frames):
        """smoothing=0 keeps the per-frame hard selection (up to the
        soft-mask blend of exact ties)."""
        vis_frames, th_frames = noisy_static_frames
        fuser = TemporalFusion(smoothing=0.0)
        out_t = fuser.fuse(vis_frames[0], th_frames[0])
        out_i = fuse_images(vis_frames[0], th_frames[0])
        assert np.allclose(out_t, out_i, atol=1e-6)

    def test_output_shape_and_finiteness(self, noisy_static_frames):
        vis_frames, th_frames = noisy_static_frames
        fuser = TemporalFusion()
        out = fuser.fuse(vis_frames[0], th_frames[0])
        assert out.shape == vis_frames[0].shape
        assert np.all(np.isfinite(out))

    def test_scene_change_resets_state(self, noisy_static_frames):
        vis_frames, th_frames = noisy_static_frames
        fuser = TemporalFusion(smoothing=0.8, scene_threshold=0.2)
        fuser.fuse(vis_frames[0], th_frames[0])
        fuser.fuse(vis_frames[1], th_frames[1])
        assert fuser.stats.scene_resets == 0
        # hard cut: completely different content
        fuser.fuse(255.0 - vis_frames[0] * 0.2, th_frames[0])
        assert fuser.stats.scene_resets == 1

    def test_stats_accumulate(self, noisy_static_frames):
        vis_frames, th_frames = noisy_static_frames
        fuser = TemporalFusion()
        for v, t in zip(vis_frames[:3], th_frames[:3]):
            fuser.fuse(v, t)
        assert fuser.stats.frames == 3
        assert fuser.stats.mean_flicker >= 0.0

    def test_manual_reset(self, noisy_static_frames):
        vis_frames, th_frames = noisy_static_frames
        fuser = TemporalFusion()
        fuser.fuse(vis_frames[0], th_frames[0])
        fuser.reset()
        assert fuser._masks is None  # noqa: SLF001 - state cleared

    def test_parameter_validation(self):
        with pytest.raises(FusionError):
            TemporalFusion(smoothing=1.0)
        with pytest.raises(FusionError):
            TemporalFusion(smoothing=-0.1)
        with pytest.raises(FusionError):
            TemporalFusion(scene_threshold=0.0)

    def test_flicker_helper_needs_two_frames(self):
        with pytest.raises(FusionError):
            selection_flicker(lambda a, b: a, [np.zeros((8, 8))],
                              [np.zeros((8, 8))])

    def test_custom_fusion_engine(self, noisy_static_frames):
        vis_frames, th_frames = noisy_static_frames
        fuser = TemporalFusion(fusion=ImageFusion(levels=2))
        out = fuser.fuse(vis_frames[0], th_frames[0])
        assert out.shape == vis_frames[0].shape
