"""Profiler: Fig. 2's 'transforms dominate' must hold in both paths."""

import numpy as np
import pytest

from repro.core.profiling import STAGES, PipelineProfiler, profile_model
from repro.types import FrameShape


class TestModelProfile:
    def test_stage_names(self, full_frame):
        profile = profile_model(full_frame)
        assert set(profile.stages) == set(STAGES)

    def test_percentages_sum_to_100(self, full_frame):
        pct = profile_model(full_frame).percentages()
        assert np.isclose(sum(pct.values()), 100.0)

    def test_transforms_dominate(self, full_frame):
        """Fig. 2's claim: forward+inverse DT-CWT are the most compute
        intensive parts (they motivate the acceleration)."""
        pct = profile_model(full_frame).percentages()
        transform_share = (pct["forward_dtcwt_visible"]
                           + pct["forward_dtcwt_thermal"]
                           + pct["inverse_dtcwt"])
        assert transform_share > 75.0
        assert pct["fusion_rule"] < 25.0

    def test_ranked_order(self, full_frame):
        ranked = profile_model(full_frame).ranked()
        assert ranked[0][1] >= ranked[-1][1]
        # the single most expensive stage is the inverse transform
        assert ranked[0][0] == "inverse_dtcwt"


class TestEmpiricalProfiler:
    def test_run_produces_all_stages(self, structured_pair):
        vis, th = structured_pair
        profiler = PipelineProfiler()
        fused = profiler.run(vis, th)
        assert fused.shape == vis.shape
        assert set(profiler.profile.stages) == set(STAGES)
        assert all(v > 0 for v in profiler.profile.stages.values())

    def test_transforms_dominate_in_wall_clock(self, structured_pair):
        """The functional implementation shows the same structure the
        paper measured: the transforms outweigh the fusion rule."""
        vis, th = structured_pair
        profiler = PipelineProfiler()
        for _ in range(3):
            profiler.run(vis, th)
        assert set(profiler.dominant_stages(2)) <= {
            "forward_dtcwt_visible", "forward_dtcwt_thermal", "inverse_dtcwt"}

    def test_percentages_accumulate_across_runs(self, structured_pair):
        vis, th = structured_pair
        profiler = PipelineProfiler()
        profiler.run(vis, th)
        first_total = profiler.profile.total_s
        profiler.run(vis, th)
        assert profiler.profile.total_s > first_total
