"""Fusion rules: selection semantics and rule invariants."""

import numpy as np
import pytest

from repro.core.fusion_rules import (
    MaxMagnitudeRule,
    WeightedRule,
    WindowActivityRule,
    rule_by_name,
)
from repro.dtcwt import Dtcwt2D, DtcwtPyramidStack
from repro.errors import FusionError


@pytest.fixture
def pyramids(rng):
    t = Dtcwt2D(levels=2)
    a = t.forward(rng.standard_normal((32, 32)))
    b = t.forward(rng.standard_normal((32, 32)))
    return a, b


class TestMaxMagnitude:
    def test_selects_larger_magnitude(self, pyramids):
        a, b = pyramids
        fused = MaxMagnitudeRule().fuse(a, b)
        for level in range(2):
            fa, fb = a.highpasses[level], b.highpasses[level]
            ff = fused.highpasses[level]
            expected = np.where(np.abs(fa) >= np.abs(fb), fa, fb)
            assert np.array_equal(ff, expected)

    def test_fused_magnitude_dominates_both(self, pyramids):
        a, b = pyramids
        fused = MaxMagnitudeRule().fuse(a, b)
        for level in range(2):
            mags = np.abs(fused.highpasses[level])
            assert np.all(mags >= np.abs(a.highpasses[level]) - 1e-12)
            assert np.all(mags >= np.abs(b.highpasses[level]) - 1e-12)

    def test_lowpass_is_average(self, pyramids):
        a, b = pyramids
        fused = MaxMagnitudeRule().fuse(a, b)
        assert np.allclose(fused.lowpass, (a.lowpass + b.lowpass) / 2.0)

    def test_self_fusion_is_identity(self, pyramids):
        a, _ = pyramids
        fused = MaxMagnitudeRule().fuse(a, a)
        for level in range(2):
            assert np.array_equal(fused.highpasses[level], a.highpasses[level])
        assert np.allclose(fused.lowpass, a.lowpass)

    def test_symmetric_up_to_ties(self, rng):
        t = Dtcwt2D(levels=1)
        a = t.forward(rng.standard_normal((16, 16)))
        b = t.forward(rng.standard_normal((16, 16)))
        ab = MaxMagnitudeRule().fuse(a, b)
        ba = MaxMagnitudeRule().fuse(b, a)
        assert np.allclose(np.abs(ab.highpasses[0]), np.abs(ba.highpasses[0]))

    def test_inputs_not_modified(self, pyramids):
        a, b = pyramids
        snap = a.highpasses[0].copy()
        MaxMagnitudeRule().fuse(a, b)
        assert np.array_equal(a.highpasses[0], snap)


class TestWeighted:
    def test_alpha_one_returns_a(self, pyramids):
        a, b = pyramids
        fused = WeightedRule(alpha=1.0).fuse(a, b)
        for level in range(2):
            assert np.allclose(fused.highpasses[level], a.highpasses[level])
        assert np.allclose(fused.lowpass, a.lowpass)

    def test_alpha_half_is_mean(self, pyramids):
        a, b = pyramids
        fused = WeightedRule(alpha=0.5).fuse(a, b)
        expected = (a.highpasses[0] + b.highpasses[0]) / 2.0
        assert np.allclose(fused.highpasses[0], expected)

    @pytest.mark.parametrize("alpha", [-0.1, 1.5])
    def test_bad_alpha(self, alpha):
        with pytest.raises(FusionError):
            WeightedRule(alpha=alpha)


class TestWindowActivity:
    def test_window_validation(self):
        with pytest.raises(FusionError):
            WindowActivityRule(window=2)
        with pytest.raises(FusionError):
            WindowActivityRule(window=-3)

    def test_selects_regionally(self, rng):
        """A strong local feature should win its whole neighbourhood."""
        t = Dtcwt2D(levels=1)
        quiet = t.forward(rng.standard_normal((32, 32)) * 0.01)
        loud_img = np.zeros((32, 32))
        loud_img[8:24, 8:24] = rng.standard_normal((16, 16)) * 10.0
        loud = t.forward(loud_img)
        fused = WindowActivityRule(window=3).fuse(quiet, loud)
        center = fused.highpasses[0][:, 6:10, 6:10]
        assert np.allclose(center, loud.highpasses[0][:, 6:10, 6:10])

    def test_consistency_suppresses_isolated_flips(self, pyramids):
        a, b = pyramids
        with_check = WindowActivityRule(window=3, consistency=True).fuse(a, b)
        without = WindowActivityRule(window=3, consistency=False).fuse(a, b)
        # both are valid selections from {a, b}
        for fused in (with_check, without):
            sel_a = np.isclose(fused.highpasses[0], a.highpasses[0])
            sel_b = np.isclose(fused.highpasses[0], b.highpasses[0])
            assert np.all(sel_a | sel_b)


class TestCompatibility:
    def test_level_mismatch(self, rng):
        a = Dtcwt2D(levels=1).forward(rng.standard_normal((16, 16)))
        b = Dtcwt2D(levels=2).forward(rng.standard_normal((16, 16)))
        with pytest.raises(FusionError):
            MaxMagnitudeRule().fuse(a, b)

    def test_shape_mismatch(self, rng):
        a = Dtcwt2D(levels=1).forward(rng.standard_normal((16, 16)))
        b = Dtcwt2D(levels=1).forward(rng.standard_normal((32, 32)))
        with pytest.raises(FusionError):
            MaxMagnitudeRule().fuse(a, b)


class TestFuseStack:
    """Every built-in rule is a vectorized ufunc-style operation: one
    stacked call fuses N pyramid pairs bitwise-identically to N
    per-pair calls."""

    @pytest.mark.parametrize("rule", [
        MaxMagnitudeRule(),
        WeightedRule(alpha=0.3),
        WindowActivityRule(window=3, consistency=True),
        WindowActivityRule(window=3, consistency=False),
    ])
    def test_stack_matches_per_pair(self, rng, rule):
        t = Dtcwt2D(levels=2)
        frames_a = rng.standard_normal((3, 32, 32))
        frames_b = rng.standard_normal((3, 32, 32))
        stack = rule.fuse_stack(t.forward_batch(frames_a),
                                t.forward_batch(frames_b))
        assert isinstance(stack, DtcwtPyramidStack)
        for i in range(3):
            pair = rule.fuse(t.forward(frames_a[i]), t.forward(frames_b[i]))
            assert np.array_equal(stack[i].lowpass, pair.lowpass)
            for got, ref in zip(stack[i].highpasses, pair.highpasses):
                assert np.array_equal(got, ref)

    def test_count_mismatch_rejected(self, rng):
        t = Dtcwt2D(levels=1)
        a = t.forward_batch(rng.standard_normal((2, 16, 16)))
        b = t.forward_batch(rng.standard_normal((3, 16, 16)))
        with pytest.raises(FusionError, match="frame count"):
            MaxMagnitudeRule().fuse_stack(a, b)

    def test_structure_mismatch_rejected(self, rng):
        a = Dtcwt2D(levels=1).forward_batch(rng.standard_normal((2, 16, 16)))
        b = Dtcwt2D(levels=2).forward_batch(rng.standard_normal((2, 16, 16)))
        with pytest.raises(FusionError):
            MaxMagnitudeRule().fuse_stack(a, b)


class TestFactory:
    def test_known_rules(self):
        assert isinstance(rule_by_name("max-magnitude"), MaxMagnitudeRule)
        assert isinstance(rule_by_name("weighted", alpha=0.3), WeightedRule)
        assert isinstance(rule_by_name("window-activity"), WindowActivityRule)

    def test_unknown_rule(self):
        with pytest.raises(FusionError):
            rule_by_name("telepathy")
