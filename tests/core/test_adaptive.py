"""Adaptive scheduling: the paper's crossover behaviour made executable."""

import numpy as np
import pytest

from repro.core.adaptive import (
    CostModelScheduler,
    OnlineScheduler,
    PerLevelScheduler,
    default_engines,
)
from repro.errors import ConfigurationError
from repro.types import PAPER_FRAME_SIZES, FrameShape


class TestCostModelScheduler:
    def test_small_frames_choose_neon(self):
        """Below the crossover the SIMD engine must win (paper SecVII)."""
        scheduler = CostModelScheduler(objective="time")
        for shape in (FrameShape(32, 24), FrameShape(35, 35)):
            assert scheduler.choose(shape).engine.name == "neon"

    def test_large_frames_choose_fpga(self):
        scheduler = CostModelScheduler(objective="time")
        for shape in (FrameShape(64, 48), FrameShape(88, 72)):
            assert scheduler.choose(shape).engine.name == "fpga"

    def test_energy_objective_shifts_crossover_later(self):
        """FPGA mode draws +19.2 mW, so the energy-optimal switch point
        is at a larger frame than the time-optimal one."""
        time_sched = CostModelScheduler(objective="time")
        energy_sched = CostModelScheduler(objective="energy")

        def first_fpga(sched):
            for px in range(24, 96):
                if sched.choose(FrameShape(px, px)).engine.name == "fpga":
                    return px
            return None

        assert first_fpga(energy_sched) >= first_fpga(time_sched)

    def test_decision_carries_alternatives(self):
        decision = CostModelScheduler().choose(FrameShape(88, 72))
        assert set(decision.alternatives) == {"arm", "neon", "fpga"}
        assert decision.predicted_s > 0
        assert decision.predicted_mj > 0

    def test_chosen_is_minimum_of_alternatives(self):
        scheduler = CostModelScheduler(objective="time")
        for shape in PAPER_FRAME_SIZES:
            decision = scheduler.choose(shape)
            assert decision.alternatives[decision.engine.name] == min(
                decision.alternatives.values())

    def test_bad_objective(self):
        with pytest.raises(ConfigurationError):
            CostModelScheduler(objective="vibes")

    def test_empty_engine_list(self):
        with pytest.raises(ConfigurationError):
            CostModelScheduler(engines=())


class TestOnlineScheduler:
    def test_explores_all_engines_first(self):
        scheduler = OnlineScheduler(probe_frames=2)
        seen = []
        for _ in range(6):
            engine = scheduler.next_engine()
            seen.append(engine.name)
            scheduler.observe(engine, 0.1)
        assert set(seen) == {"arm", "neon", "fpga"}

    def test_exploits_fastest_after_probing(self):
        scheduler = OnlineScheduler(probe_frames=1, reprobe_every=100)
        latencies = {"arm": 0.10, "neon": 0.08, "fpga": 0.03}
        for _ in range(3):
            engine = scheduler.next_engine()
            scheduler.observe(engine, latencies[engine.name])
        for _ in range(10):
            engine = scheduler.next_engine()
            assert engine.name == "fpga"
            scheduler.observe(engine, latencies["fpga"])

    def test_reprobes_runner_up(self):
        scheduler = OnlineScheduler(probe_frames=1, reprobe_every=5)
        latencies = {"arm": 0.10, "neon": 0.05, "fpga": 0.20}
        picks = []
        for _ in range(20):
            engine = scheduler.next_engine()
            picks.append(engine.name)
            scheduler.observe(engine, latencies[engine.name])
        assert picks.count("arm") >= 2  # runner-up periodically re-probed

    def test_adapts_to_workload_change(self):
        """When the workload shifts (frame size change), re-probing must
        eventually flip the decision."""
        scheduler = OnlineScheduler(probe_frames=1, reprobe_every=3)
        # phase 1: fpga fastest
        phase = {"arm": 0.10, "neon": 0.08, "fpga": 0.03}
        for _ in range(9):
            engine = scheduler.next_engine()
            scheduler.observe(engine, phase[engine.name])
        # phase 2: tiny frames -> neon fastest
        phase = {"arm": 0.012, "neon": 0.008, "fpga": 0.030}
        picks = []
        for _ in range(60):
            engine = scheduler.next_engine()
            picks.append(engine.name)
            scheduler.observe(engine, phase[engine.name])
        # exploitation settles on neon (reprobes still sample others)
        tail = picks[-20:]
        assert tail.count("neon") > len(tail) // 2

    def test_reset_forgets(self):
        scheduler = OnlineScheduler(probe_frames=1)
        for _ in range(3):
            engine = scheduler.next_engine()
            scheduler.observe(engine, 0.05)
        scheduler.reset()
        # back to exploration
        names = {scheduler.next_engine().name for _ in range(1)}
        assert names <= {"arm", "neon", "fpga"}

    def test_negative_observation_rejected(self):
        scheduler = OnlineScheduler()
        engine = scheduler.next_engine()
        with pytest.raises(ConfigurationError):
            scheduler.observe(engine, -1.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineScheduler(probe_frames=0)
        with pytest.raises(ConfigurationError):
            OnlineScheduler(reprobe_every=1)


class TestPerLevelScheduler:
    def test_plan_structure(self):
        plan = PerLevelScheduler().plan(FrameShape(88, 72), levels=3)
        assert len(plan.forward_assignment) == 3
        assert len(plan.inverse_assignment) == 3
        assert plan.predicted_s > 0

    def test_large_frame_mixes_engines(self):
        """At 88x72 the early levels favour FPGA while the deepest level
        (22x18 per tree) sits below the crossover -> NEON."""
        plan = PerLevelScheduler().plan(FrameShape(88, 72), levels=3)
        assert plan.forward_assignment[0] == "fpga"
        assert plan.forward_assignment[-1] == "neon"

    def test_small_frame_avoids_fpga_everywhere(self):
        plan = PerLevelScheduler().plan(FrameShape(32, 24), levels=3)
        assert "fpga" not in plan.forward_assignment[1:]

    def test_beats_or_matches_best_static_engine(self):
        """The mixed plan must never lose to the best single engine by
        more than the switching penalty it chose to pay."""
        shape = FrameShape(88, 72)
        plan = PerLevelScheduler().plan(shape, levels=3)
        static_best = min(e.frame_time(shape, 3).total_s
                          for e in default_engines())
        assert plan.predicted_s <= static_best * 1.001

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            PerLevelScheduler(switch_penalty_s=-1.0)
