"""Related-work fusion baselines: correctness and sanity."""

import numpy as np
import pytest

from repro.baselines import (
    fuse_average,
    fuse_dwt,
    fuse_laplacian,
    fuse_max,
    fuse_pca,
    laplacian_pyramid,
    reconstruct,
)
from repro.errors import FusionError


class TestSimpleBaselines:
    def test_average(self, rng):
        a = rng.uniform(0, 255, (16, 16))
        b = rng.uniform(0, 255, (16, 16))
        assert np.allclose(fuse_average(a, b), (a + b) / 2)

    def test_max(self, rng):
        a = rng.uniform(0, 255, (16, 16))
        b = rng.uniform(0, 255, (16, 16))
        fused = fuse_max(a, b)
        assert np.all(fused >= a) and np.all(fused >= b)

    def test_pca_weights_sum_to_one(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        b = a * 0.5 + rng.normal(0, 5, a.shape)
        fused = fuse_pca(a, b)
        # output stays within the convex hull of the inputs
        assert fused.min() >= min(a.min(), b.min()) - 1e-9
        assert fused.max() <= max(a.max(), b.max()) + 1e-9

    def test_pca_follows_dominant_source(self, rng):
        """The source with far more variance should dominate the blend."""
        strong = rng.uniform(0, 255, (32, 32))
        weak = np.full((32, 32), 128.0) + rng.normal(0, 1, (32, 32))
        fused = fuse_pca(strong, weak)
        corr_strong = np.corrcoef(fused.ravel(), strong.ravel())[0, 1]
        corr_weak = np.corrcoef(fused.ravel(), weak.ravel())[0, 1]
        assert corr_strong > corr_weak

    @pytest.mark.parametrize("fn", [fuse_average, fuse_max, fuse_pca])
    def test_shape_mismatch(self, fn, rng):
        with pytest.raises(FusionError):
            fn(rng.uniform(0, 1, (8, 8)), rng.uniform(0, 1, (9, 9)))

    @pytest.mark.parametrize("fn", [fuse_average, fuse_max, fuse_pca])
    def test_self_fusion_identity(self, fn, rng):
        a = rng.uniform(0, 255, (16, 16))
        assert np.allclose(fn(a, a), a)


class TestLaplacianPyramid:
    def test_reconstruction_exact(self, rng):
        img = rng.uniform(0, 255, (48, 64))
        pyr = laplacian_pyramid(img, levels=3)
        assert np.max(np.abs(reconstruct(pyr) - img)) < 1e-9

    def test_pyramid_depth(self, rng):
        img = rng.uniform(0, 255, (64, 64))
        pyr = laplacian_pyramid(img, levels=3)
        assert len(pyr) == 4  # 3 band-pass + 1 Gaussian top
        assert pyr[0].shape == (64, 64)
        assert pyr[1].shape == (32, 32)

    def test_small_image_stops_early(self, rng):
        img = rng.uniform(0, 255, (8, 8))
        pyr = laplacian_pyramid(img, levels=6)
        assert len(pyr) <= 4

    def test_bad_levels(self):
        with pytest.raises(FusionError):
            laplacian_pyramid(np.zeros((16, 16)), levels=0)

    def test_fusion_keeps_stronger_detail(self, rng):
        sharp = rng.uniform(0, 255, (32, 32))
        flat = np.full((32, 32), 128.0)
        fused = fuse_laplacian(sharp, flat, levels=2)
        # fused image must carry the detail of the sharp source
        assert np.std(fused) > 0.5 * np.std(sharp)

    def test_self_fusion_identity(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        assert np.max(np.abs(fuse_laplacian(a, a, 3) - a)) < 1e-9


class TestDwtFusion:
    def test_self_fusion_identity(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        assert np.max(np.abs(fuse_dwt(a, a) - a)) < 1e-8

    def test_output_shape(self, rng):
        a = rng.uniform(0, 255, (40, 40))
        b = rng.uniform(0, 255, (40, 40))
        assert fuse_dwt(a, b).shape == (40, 40)

    def test_shape_mismatch(self, rng):
        with pytest.raises(FusionError):
            fuse_dwt(rng.uniform(0, 1, (8, 8)), rng.uniform(0, 1, (16, 16)))
