"""ImageFusion pipeline: staged API, shapes, information transfer."""

import numpy as np
import pytest

from repro.core.fusion import (
    BatchFusionResult,
    FusionResult,
    ImageFusion,
    fuse_images,
)
from repro.core.fusion_rules import WeightedRule
from repro.errors import FusionError


class TestFuse:
    def test_output_shape_matches_input(self, structured_pair):
        vis, th = structured_pair
        fused = fuse_images(vis, th)
        assert fused.shape == vis.shape

    def test_result_fields(self, structured_pair):
        vis, th = structured_pair
        result = ImageFusion(levels=2).fuse(vis, th)
        assert isinstance(result, FusionResult)
        assert result.pyramid_a.levels == 2
        assert result.pyramid_fused.levels == 2
        assert result.fused.shape == vis.shape

    def test_identical_inputs_reconstruct_exactly(self, rng):
        x = rng.standard_normal((40, 40)) * 50 + 100
        fused = fuse_images(x, x)
        assert np.max(np.abs(fused - x)) < 1e-8

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(FusionError):
            fuse_images(rng.standard_normal((16, 16)),
                        rng.standard_normal((24, 24)))

    def test_odd_sizes_supported(self, rng):
        """The paper's 35x35 sweep point must work."""
        a = rng.standard_normal((35, 35))
        b = rng.standard_normal((35, 35))
        assert fuse_images(a, b).shape == (35, 35)

    def test_fused_contains_both_modalities(self, structured_pair):
        """Fusion transfers the thermal blob into the visible context."""
        vis, th = structured_pair
        fused = fuse_images(vis, th)
        # the hot blob region must be brighter in the fused image than
        # the visible image alone shows it
        blob = (slice(25, 36), slice(55, 66))
        assert fused[blob].mean() > vis[blob].mean() + 5.0

    def test_weighted_rule_full_alpha_recovers_input_a(self, structured_pair):
        vis, th = structured_pair
        fusion = ImageFusion(levels=3, rule=WeightedRule(alpha=1.0))
        fused = fusion.fuse(vis, th).fused
        assert np.max(np.abs(fused - vis)) < 1e-8


class TestStagedApi:
    def test_stages_compose_to_fuse(self, structured_pair):
        vis, th = structured_pair
        fusion = ImageFusion(levels=2)
        pyr_a = fusion.decompose(vis)
        pyr_b = fusion.decompose(th)
        fused_pyr = fusion.combine(pyr_a, pyr_b)
        fused = fusion.reconstruct(fused_pyr)
        assert np.allclose(fused, fusion.fuse(vis, th).fused)

    def test_levels_property(self):
        assert ImageFusion(levels=4).levels == 4


class TestFuseBatch:
    def test_bitwise_identical_to_per_pair_fuse(self, rng):
        vis = rng.standard_normal((4, 40, 40)) * 40 + 110
        th = rng.standard_normal((4, 40, 40)) * 40 + 90
        fusion = ImageFusion(levels=2)
        batch = fusion.fuse_batch(vis, th)
        assert isinstance(batch, BatchFusionResult)
        assert len(batch) == 4
        for i in range(4):
            assert np.array_equal(batch.fused[i],
                                  fusion.fuse(vis[i], th[i]).fused)

    def test_getitem_adapts_to_fusion_result(self, rng):
        vis = rng.standard_normal((2, 32, 32))
        th = rng.standard_normal((2, 32, 32))
        result = ImageFusion(levels=2).fuse_batch(vis, th)[1]
        assert isinstance(result, FusionResult)
        assert result.pyramid_a.levels == 2
        assert result.fused.shape == (32, 32)

    def test_staged_batch_api_composes(self, rng):
        vis = rng.standard_normal((3, 32, 32))
        th = rng.standard_normal((3, 32, 32))
        fusion = ImageFusion(levels=2)
        stack_a = fusion.decompose_batch(vis)
        stack_b = fusion.decompose_batch(th)
        fused = fusion.reconstruct_batch(
            fusion.combine_stack(stack_a, stack_b))
        assert np.array_equal(fused, fusion.fuse_batch(vis, th).fused)

    def test_accepts_frame_lists(self, rng):
        vis = [rng.standard_normal((16, 16)) for _ in range(2)]
        th = [rng.standard_normal((16, 16)) for _ in range(2)]
        assert ImageFusion(levels=1).fuse_batch(vis, th).fused.shape \
            == (2, 16, 16)

    def test_rejects_2d_inputs_and_shape_mismatch(self, rng):
        fusion = ImageFusion(levels=2)
        with pytest.raises(FusionError, match="fuse_batch expects"):
            fusion.fuse_batch(rng.standard_normal((16, 16)),
                              rng.standard_normal((16, 16)))
        with pytest.raises(FusionError, match="share a shape"):
            fusion.fuse_batch(rng.standard_normal((2, 16, 16)),
                              rng.standard_normal((3, 16, 16)))
        with pytest.raises(FusionError):
            fusion.fuse_batch(rng.standard_normal((2, 2, 16, 16)),
                              rng.standard_normal((2, 2, 16, 16)))
        with pytest.raises(FusionError, match="empty"):
            fusion.fuse_batch(np.empty((0, 16, 16)), np.empty((0, 16, 16)))

    def test_odd_sizes_supported(self, rng):
        vis = rng.standard_normal((2, 35, 35))
        th = rng.standard_normal((2, 35, 35))
        assert ImageFusion(levels=3).fuse_batch(vis, th).fused.shape \
            == (2, 35, 35)
