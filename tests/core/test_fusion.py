"""ImageFusion pipeline: staged API, shapes, information transfer."""

import numpy as np
import pytest

from repro.core.fusion import FusionResult, ImageFusion, fuse_images
from repro.core.fusion_rules import WeightedRule
from repro.errors import FusionError


class TestFuse:
    def test_output_shape_matches_input(self, structured_pair):
        vis, th = structured_pair
        fused = fuse_images(vis, th)
        assert fused.shape == vis.shape

    def test_result_fields(self, structured_pair):
        vis, th = structured_pair
        result = ImageFusion(levels=2).fuse(vis, th)
        assert isinstance(result, FusionResult)
        assert result.pyramid_a.levels == 2
        assert result.pyramid_fused.levels == 2
        assert result.fused.shape == vis.shape

    def test_identical_inputs_reconstruct_exactly(self, rng):
        x = rng.standard_normal((40, 40)) * 50 + 100
        fused = fuse_images(x, x)
        assert np.max(np.abs(fused - x)) < 1e-8

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(FusionError):
            fuse_images(rng.standard_normal((16, 16)),
                        rng.standard_normal((24, 24)))

    def test_odd_sizes_supported(self, rng):
        """The paper's 35x35 sweep point must work."""
        a = rng.standard_normal((35, 35))
        b = rng.standard_normal((35, 35))
        assert fuse_images(a, b).shape == (35, 35)

    def test_fused_contains_both_modalities(self, structured_pair):
        """Fusion transfers the thermal blob into the visible context."""
        vis, th = structured_pair
        fused = fuse_images(vis, th)
        # the hot blob region must be brighter in the fused image than
        # the visible image alone shows it
        blob = (slice(25, 36), slice(55, 66))
        assert fused[blob].mean() > vis[blob].mean() + 5.0

    def test_weighted_rule_full_alpha_recovers_input_a(self, structured_pair):
        vis, th = structured_pair
        fusion = ImageFusion(levels=3, rule=WeightedRule(alpha=1.0))
        fused = fusion.fuse(vis, th).fused
        assert np.max(np.abs(fused - vis)) < 1e-8


class TestStagedApi:
    def test_stages_compose_to_fuse(self, structured_pair):
        vis, th = structured_pair
        fusion = ImageFusion(levels=2)
        pyr_a = fusion.decompose(vis)
        pyr_b = fusion.decompose(th)
        fused_pyr = fusion.combine(pyr_a, pyr_b)
        fused = fusion.reconstruct(fused_pyr)
        assert np.allclose(fused, fusion.fuse(vis, th).fused)

    def test_levels_property(self):
        assert ImageFusion(levels=4).levels == 4
