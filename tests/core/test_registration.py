"""Registration: phase correlation and DT-CWT coarse-to-fine."""

import numpy as np
import pytest

from repro.core.registration import (
    DtcwtRegistration,
    RegistrationResult,
    phase_correlation,
    register_and_fuse,
)
from repro.errors import FusionError
from repro.video.scene import SyntheticScene


@pytest.fixture
def textured_image():
    scene = SyntheticScene(width=96, height=80, seed=2)
    return scene.render_thermal(0.0)


class TestPhaseCorrelation:
    @pytest.mark.parametrize("shift", [(3, -5), (0, 0), (-7, 2), (10, 10)])
    def test_recovers_integer_shifts(self, textured_image, shift):
        moved = np.roll(np.roll(textured_image, shift[0], axis=0),
                        shift[1], axis=1)
        result = phase_correlation(textured_image, moved)
        assert round(result.dy) == -shift[0]
        assert round(result.dx) == -shift[1]

    def test_confidence_high_for_clean_shift(self, textured_image):
        moved = np.roll(textured_image, 4, axis=0)
        assert phase_correlation(textured_image, moved).confidence > 0.5

    def test_confidence_lower_for_unrelated_images(self, textured_image, rng):
        noise = rng.uniform(0, 255, textured_image.shape)
        clean = phase_correlation(textured_image,
                                  np.roll(textured_image, 3, axis=0))
        messy = phase_correlation(textured_image, noise)
        assert messy.confidence < clean.confidence

    def test_shape_mismatch(self, textured_image, rng):
        with pytest.raises(FusionError):
            phase_correlation(textured_image, rng.uniform(0, 1, (10, 10)))

    def test_subpixel_interpolation_stays_close(self, textured_image):
        """A half-pixel-ish shift (average of two rolls) lands between
        the integer candidates."""
        blended = 0.5 * (np.roll(textured_image, 2, axis=0)
                         + np.roll(textured_image, 3, axis=0))
        result = phase_correlation(textured_image, blended)
        assert -3.5 < result.dy < -1.5


class TestDtcwtRegistration:
    @pytest.mark.parametrize("shift", [(3, -5), (2, 4), (-1, 7), (0, 0),
                                       (6, 6), (-4, -2)])
    def test_same_sensor_exact(self, textured_image, shift):
        moved = np.roll(np.roll(textured_image, shift[0], axis=0),
                        shift[1], axis=1)
        result = DtcwtRegistration(levels=4, max_shift=8).estimate(
            textured_image, moved)
        assert (result.dy, result.dx) == (-shift[0], -shift[1])

    @pytest.mark.parametrize("shift", [(3, -2), (-4, 5), (0, 0)])
    def test_robust_to_intensity_remapping(self, textured_image, shift):
        """Different sensor response: gamma curve + inversion + offset.
        Gradient/magnitude-based matching must not care."""
        remapped = 255.0 - 200.0 * (textured_image / 255.0) ** 0.6
        moved = np.roll(np.roll(remapped, shift[0], axis=0),
                        shift[1], axis=1)
        result = DtcwtRegistration(levels=4, max_shift=8).estimate(
            textured_image, moved)
        assert abs(result.dy + shift[0]) <= 1
        assert abs(result.dx + shift[1]) <= 1

    def test_estimates_respect_max_shift(self, textured_image, rng):
        noise = rng.uniform(0, 255, textured_image.shape)
        result = DtcwtRegistration(levels=4, max_shift=5).estimate(
            textured_image, noise)
        assert abs(result.dy) <= 5
        assert abs(result.dx) <= 5

    def test_parameter_validation(self):
        with pytest.raises(FusionError):
            DtcwtRegistration(levels=1)
        with pytest.raises(FusionError):
            DtcwtRegistration(max_shift=0)

    def test_result_magnitude(self):
        result = RegistrationResult(dy=3.0, dx=4.0, confidence=1.0)
        assert result.magnitude == 5.0


class TestRegisterAndFuse:
    def test_alignment_before_fusion(self, textured_image):
        """Fusing a misaligned copy after registration must beat fusing
        it raw (sharper result, closer to the self-fusion ideal)."""
        from repro.core.fusion import fuse_images
        moved = np.roll(np.roll(textured_image, 4, axis=0), -3, axis=1)
        fused_registered, result = register_and_fuse(textured_image, moved)
        fused_raw = fuse_images(textured_image, moved)
        err_registered = np.mean(np.abs(fused_registered - textured_image))
        err_raw = np.mean(np.abs(fused_raw - textured_image))
        assert (round(result.dy), round(result.dx)) == (-4, 3)
        assert err_registered < err_raw
