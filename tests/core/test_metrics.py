"""Fusion quality metrics: ranges, identities, discrimination."""

import numpy as np
import pytest

from repro.core import metrics
from repro.errors import FusionError


@pytest.fixture
def image(rng):
    return rng.uniform(0, 255, (48, 48))


class TestEntropy:
    def test_constant_image_zero_entropy(self):
        assert metrics.entropy(np.full((16, 16), 42.0)) == 0.0

    def test_uniform_noise_high_entropy(self, rng):
        img = rng.uniform(0, 255, (64, 64))
        assert metrics.entropy(img) > 6.0

    def test_bounded_by_log_bins(self, image):
        assert metrics.entropy(image, bins=16) <= 4.0 + 1e-9

    def test_rejects_non_2d(self):
        with pytest.raises(FusionError):
            metrics.entropy(np.arange(10))


class TestMutualInformation:
    def test_symmetric(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        b = a + rng.normal(0, 20, a.shape)
        assert np.isclose(metrics.mutual_information(a, b),
                          metrics.mutual_information(b, a))

    def test_self_information_is_entropy_like(self, image):
        mi_self = metrics.mutual_information(image, image)
        mi_indep = metrics.mutual_information(
            image, np.random.default_rng(1).uniform(0, 255, image.shape))
        assert mi_self > mi_indep + 1.0

    def test_nonnegative(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        b = rng.uniform(0, 255, (32, 32))
        assert metrics.mutual_information(a, b) >= -1e-9

    def test_size_mismatch(self, rng):
        with pytest.raises(FusionError):
            metrics.mutual_information(rng.uniform(0, 1, (8, 8)),
                                       rng.uniform(0, 1, (9, 9)))

    def test_fusion_mi_sums_sources(self, image, rng):
        other = rng.uniform(0, 255, image.shape)
        fused = (image + other) / 2
        total = metrics.fusion_mutual_information(image, other, fused)
        assert np.isclose(
            total,
            metrics.mutual_information(image, fused)
            + metrics.mutual_information(other, fused),
        )


class TestQabf:
    def test_perfect_fusion_of_identical_sources(self, image):
        """Fusing identical images with the identity: Q^AB/F near 1."""
        q = metrics.petrovic_qabf(image, image, image)
        assert q > 0.85

    def test_unrelated_output_scores_low(self, rng, image):
        noise = rng.uniform(0, 255, image.shape)
        q_good = metrics.petrovic_qabf(image, image, image)
        q_bad = metrics.petrovic_qabf(image, image, noise)
        assert q_bad < q_good

    def test_bounded(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        b = rng.uniform(0, 255, (32, 32))
        f = (a + b) / 2
        assert 0.0 <= metrics.petrovic_qabf(a, b, f) <= 1.0

    def test_flat_images_score_zero(self):
        flat = np.zeros((16, 16))
        assert metrics.petrovic_qabf(flat, flat, flat) == 0.0


class TestSsim:
    def test_identity(self, image):
        assert np.isclose(metrics.ssim(image, image), 1.0)

    def test_degrades_with_noise(self, rng, image):
        noisy_small = image + rng.normal(0, 5, image.shape)
        noisy_large = image + rng.normal(0, 50, image.shape)
        assert metrics.ssim(image, noisy_small) > metrics.ssim(image, noisy_large)

    def test_shape_mismatch(self, rng):
        with pytest.raises(FusionError):
            metrics.ssim(rng.uniform(0, 1, (8, 8)), rng.uniform(0, 1, (9, 9)))


class TestSharpness:
    def test_spatial_frequency_prefers_detail(self, rng):
        sharp = rng.uniform(0, 255, (32, 32))
        blurred = np.full((32, 32), sharp.mean())
        assert metrics.spatial_frequency(sharp) > metrics.spatial_frequency(blurred)

    def test_average_gradient_zero_for_flat(self):
        assert metrics.average_gradient(np.ones((16, 16))) == 0.0


class TestPsnr:
    def test_identical_images_infinite(self, image):
        assert metrics.psnr(image, image) == float("inf")

    def test_known_value(self):
        ref = np.zeros((8, 8))
        img = np.full((8, 8), 16.0)  # MSE = 256 -> PSNR = 10log10(255^2/256)
        expected = 10 * np.log10(255.0 ** 2 / 256.0)
        assert np.isclose(metrics.psnr(ref, img), expected)

    def test_shape_mismatch(self):
        with pytest.raises(FusionError):
            metrics.psnr(np.zeros((4, 4)), np.zeros((5, 5)))


class TestReport:
    def test_report_keys(self, structured_pair):
        vis, th = structured_pair
        report = metrics.fusion_report(vis, th, (vis + th) / 2)
        assert set(report) == {"entropy", "mutual_information", "qabf",
                               "spatial_frequency", "average_gradient"}
