"""Foundational shared types."""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DriverError,
    EngineError,
    HardwareModelError,
    ReproError,
    TransformError,
    VideoError,
)
from repro.types import (
    FULL_FRAME,
    PAPER_FRAME_SIZES,
    EnergyReport,
    FrameShape,
    StageProfile,
    TimingBreakdown,
)


class TestFrameShape:
    def test_paper_sizes_in_order(self):
        assert [str(s) for s in PAPER_FRAME_SIZES] == [
            "32x24", "35x35", "40x40", "64x48", "88x72"]
        assert FULL_FRAME == FrameShape(88, 72)

    def test_pixels_and_array_shape(self):
        shape = FrameShape(88, 72)
        assert shape.pixels == 6336
        assert shape.array_shape == (72, 88)  # numpy is (rows, cols)

    def test_scaled(self):
        assert FrameShape(88, 72).scaled(0.5) == FrameShape(44, 36)
        assert FrameShape(3, 3).scaled(0.01) == FrameShape(1, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrameShape(0, 10)
        with pytest.raises(ConfigurationError):
            FrameShape(10, -1)

    def test_hashable_and_equal(self):
        assert FrameShape(4, 4) == FrameShape(4, 4)
        assert len({FrameShape(4, 4), FrameShape(4, 4)}) == 1


class TestTimingBreakdown:
    def test_total_sums_components(self):
        b = TimingBreakdown(compute_s=1.0, transfer_s=0.5,
                            command_s=0.25, overhead_s=0.25)
        assert b.total_s == 2.0

    def test_addition(self):
        a = TimingBreakdown(compute_s=1.0, command_s=0.5)
        b = TimingBreakdown(compute_s=2.0, transfer_s=1.0)
        total = a + b
        assert total.compute_s == 3.0
        assert total.transfer_s == 1.0
        assert total.command_s == 0.5

    def test_scaled(self):
        b = TimingBreakdown(compute_s=1.0, transfer_s=2.0).scaled(2.0)
        assert b.compute_s == 2.0
        assert b.total_s == 6.0


class TestEnergyReport:
    def test_joules(self):
        report = EnergyReport(seconds=2.0, power_w=0.533)
        assert np.isclose(report.joules, 1.066)
        assert np.isclose(report.millijoules, 1066.0)


class TestStageProfile:
    def test_percentages(self):
        profile = StageProfile()
        profile.add("a", 3.0)
        profile.add("b", 1.0)
        pct = profile.percentages()
        assert np.isclose(pct["a"], 75.0)
        assert np.isclose(sum(pct.values()), 100.0)

    def test_accumulation(self):
        profile = StageProfile()
        profile.add("x", 1.0)
        profile.add("x", 2.0)
        assert profile.stages["x"] == 3.0

    def test_ranked(self):
        profile = StageProfile()
        profile.add("small", 1.0)
        profile.add("big", 9.0)
        assert profile.ranked()[0][0] == "big"

    def test_empty_profile(self):
        assert StageProfile().percentages() == {}
        assert StageProfile().total_s == 0.0


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc in (ConfigurationError, TransformError, VideoError,
                    HardwareModelError, DriverError, EngineError):
            assert issubclass(exc, ReproError)

    def test_hw_errors_are_grouped(self):
        assert issubclass(DriverError, HardwareModelError)
        assert issubclass(EngineError, HardwareModelError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise DriverError("bad ioctl")
