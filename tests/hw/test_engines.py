"""ARM / NEON / FPGA engine timing models against the paper's structure."""

import numpy as np
import pytest

from repro.hw.arm import ArmEngine
from repro.hw.calibration import DEFAULT_CALIBRATION
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine
from repro.types import PAPER_FRAME_SIZES, FrameShape


class TestArmEngine:
    def test_time_scales_with_area(self, arm_engine):
        t_small = arm_engine.forward_time(FrameShape(44, 36)).total_s
        t_large = arm_engine.forward_time(FrameShape(88, 72)).total_s
        assert 3.5 < t_large / t_small < 4.5

    def test_monotonic_in_paper_sizes(self, arm_engine):
        times = [arm_engine.forward_stage_time(s) for s in PAPER_FRAME_SIZES]
        assert times == sorted(times)

    def test_inverse_slower_than_forward_per_image(self, arm_engine, full_frame):
        assert (arm_engine.inverse_time(full_frame).total_s
                > arm_engine.forward_time(full_frame).total_s)

    def test_breakdown_components(self, arm_engine, full_frame):
        breakdown = arm_engine.forward_time(full_frame)
        assert breakdown.compute_s > 0
        assert breakdown.overhead_s > 0
        assert breakdown.transfer_s == 0  # no PL transfers on the CPU
        assert breakdown.command_s == 0

    def test_fusion_time_independent_of_engine(self, arm_engine, fpga_engine,
                                               full_frame):
        """The fusion rule always runs on the ARM."""
        assert np.isclose(arm_engine.fusion_time(full_frame).total_s,
                          fpga_engine.fusion_time(full_frame).total_s)

    def test_frame_time_composition(self, arm_engine, full_frame):
        total = arm_engine.frame_time(full_frame).total_s
        parts = (2 * arm_engine.forward_time(full_frame).total_s
                 + arm_engine.fusion_time(full_frame).total_s
                 + arm_engine.inverse_time(full_frame).total_s)
        assert np.isclose(total, parts)


class TestNeonEngine:
    def test_faster_than_arm_everywhere(self, arm_engine, neon_engine):
        for shape in PAPER_FRAME_SIZES:
            assert (neon_engine.forward_stage_time(shape)
                    < arm_engine.forward_stage_time(shape))
            assert (neon_engine.inverse_stage_time(shape)
                    < arm_engine.inverse_stage_time(shape))

    def test_full_frame_gains_match_paper(self, arm_engine, neon_engine,
                                          full_frame):
        """Paper: NEON saves ~10 % forward, ~16 % inverse at 88x72."""
        fwd_gain = 1 - (neon_engine.forward_stage_time(full_frame)
                        / arm_engine.forward_stage_time(full_frame))
        inv_gain = 1 - (neon_engine.inverse_stage_time(full_frame)
                        / arm_engine.inverse_stage_time(full_frame))
        assert abs(fwd_gain - 0.10) < 0.02
        assert abs(inv_gain - 0.16) < 0.02

    def test_lane_epilogue_penalty(self, neon_engine, arm_engine):
        """Rows that are not lane multiples (35x35) gain less from NEON
        than aligned rows (Section IV's multiple-of-4 requirement)."""
        aligned = FrameShape(36, 36)
        odd = FrameShape(35, 35)
        gain_aligned = (arm_engine.forward_stage_time(aligned)
                        / neon_engine.forward_stage_time(aligned))
        gain_odd = (arm_engine.forward_stage_time(odd)
                    / neon_engine.forward_stage_time(odd))
        assert gain_aligned > gain_odd

    def test_speedup_helper(self, neon_engine, full_frame):
        assert neon_engine.speedup_vs_arm(full_frame, direction="forward") > 1.0
        assert neon_engine.speedup_vs_arm(full_frame, direction="inverse") > 1.0


class TestFpgaEngine:
    def test_wins_big_loses_small(self, neon_engine, fpga_engine):
        """The paper's central observation."""
        assert (fpga_engine.forward_stage_time(FrameShape(88, 72))
                < neon_engine.forward_stage_time(FrameShape(88, 72)))
        assert (fpga_engine.forward_stage_time(FrameShape(32, 24))
                > neon_engine.forward_stage_time(FrameShape(32, 24)))

    def test_small_frame_worse_than_arm_too(self, arm_engine, fpga_engine):
        """At 32x24 the FPGA forward takes longer than plain ARM
        (the command-overhead effect the paper describes)."""
        small = FrameShape(32, 24)
        assert (fpga_engine.forward_stage_time(small)
                > arm_engine.forward_stage_time(small))

    def test_command_cost_dominates_small_frames(self, fpga_engine):
        breakdown = fpga_engine.forward_time(FrameShape(32, 24))
        assert breakdown.command_s > breakdown.compute_s

    def test_double_buffering_helps(self):
        db_on = FpgaEngine(double_buffered=True)
        db_off = FpgaEngine(double_buffered=False)
        shape = FrameShape(88, 72)
        assert (db_on.forward_time(shape).total_s
                < db_off.forward_time(shape).total_s)

    def test_breakdown_has_all_components(self, fpga_engine, full_frame):
        breakdown = fpga_engine.forward_time(full_frame)
        assert breakdown.compute_s > 0
        assert breakdown.command_s > 0
        assert breakdown.transfer_s >= 0

    def test_calibration_overrides_flow_through(self):
        slow_driver = DEFAULT_CALIBRATION.with_overrides(
            fpga_driver_invocation_s=1e-4)
        slow = FpgaEngine(calibration=slow_driver)
        fast = FpgaEngine()
        shape = FrameShape(64, 48)
        assert slow.forward_time(shape).total_s > fast.forward_time(shape).total_s


class TestCrossovers:
    """Where the winner flips — the quantitative heart of the paper."""

    def _crossover(self, metric_a, metric_b):
        for px in range(24, 96):
            shape = FrameShape(px, px)
            if metric_a(shape) < metric_b(shape):
                return px
        return None

    def test_forward_crossover_in_paper_window(self, neon_engine, fpga_engine):
        """Paper: between 35x35 and 40x40 pixels."""
        px = self._crossover(fpga_engine.forward_stage_time,
                             neon_engine.forward_stage_time)
        assert 35 < px <= 40

    def test_total_crossover_near_40(self, neon_engine, fpga_engine):
        px = self._crossover(
            lambda s: fpga_engine.frame_time(s).total_s,
            lambda s: neon_engine.frame_time(s).total_s)
        assert 35 < px <= 42
