"""Extension engines (jit, gpu), precision API and registry pinning."""

import numpy as np
import pytest

from repro.errors import CalibrationError, ConfigurationError
from repro.hw import Calibration, PowerModel
from repro.hw.registry import (DEFAULT_ENGINE_NAMES, create_engine,
                               default_engines, engine_names,
                               precision_candidates)
from repro.types import FrameShape

FULL = FrameShape(88, 72)
SMALL = FrameShape(16, 16)


class TestRegistryPinning:
    def test_extension_engines_registered(self):
        assert {"jit", "gpu"} <= set(engine_names())
        assert create_engine("jit").name == "jit"
        assert create_engine("gpu").name == "gpu"

    def test_default_engines_stay_the_paper_trio(self):
        """Registering jit/gpu must not change default scheduling:
        the default set stays pinned to the paper's engines."""
        assert DEFAULT_ENGINE_NAMES == ("arm", "neon", "fpga")
        assert tuple(e.name for e in default_engines()) == ("arm", "neon",
                                                            "fpga")

    def test_precision_candidates_filter(self):
        assert tuple(e.name for e in precision_candidates()) == (
            "arm", "neon", "fpga")
        assert tuple(e.name for e in
                     precision_candidates("float32")) == ("arm", "neon",
                                                          "fpga")
        # the float32-only FPGA drops out under an explicit float64
        assert tuple(e.name for e in
                     precision_candidates("float64")) == ("arm", "neon")


class TestPrecisionApi:
    @pytest.mark.parametrize("name", ["arm", "neon", "fpga", "jit", "gpu"])
    def test_native_precision_is_float32(self, name):
        engine = create_engine(name)
        assert engine.supported_precisions[0] == "float32"
        assert engine.working_dtype() == np.float32
        assert engine.make_backend().dtype == np.float32

    @pytest.mark.parametrize("name", ["arm", "neon", "jit", "gpu"])
    def test_float64_selectable_on_cpu_class_engines(self, name):
        engine = create_engine(name)
        assert engine.working_dtype("float64") == np.float64
        assert engine.make_backend("float64").dtype == np.float64
        assert engine.transform(2, precision="float64").backend.dtype \
            == np.float64

    def test_fpga_rejects_float64_eagerly(self):
        fpga = create_engine("fpga")
        assert fpga.supported_precisions == ("float32",)
        with pytest.raises(ConfigurationError, match="float64"):
            fpga.working_dtype("float64")
        with pytest.raises(ConfigurationError):
            fpga.make_backend("float64")

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            create_engine("arm").working_dtype("float16")


class TestJitEngineModel:
    def test_faster_than_arm_everywhere(self):
        arm, jit = create_engine("arm"), create_engine("jit")
        for shape in (SMALL, FULL, FrameShape(352, 288)):
            assert jit.forward_time(shape).total_s \
                < arm.forward_time(shape).total_s
            assert jit.inverse_time(shape).total_s \
                < arm.inverse_time(shape).total_s

    def test_monotonic_in_size(self):
        jit = create_engine("jit")
        times = [jit.frame_time(FrameShape(s, s)).total_s
                 for s in (16, 40, 88, 176)]
        assert times == sorted(times)

    def test_power_mode_is_host(self):
        assert create_engine("jit").power_mode == "host"
        # host draws like the ARM column: same rails busy
        pm = PowerModel()
        assert pm.power_w("host") == pytest.approx(pm.power_w("arm"))


class TestGpuEngineModel:
    def test_breakdown_has_transfer_and_command(self):
        t = create_engine("gpu").forward_time(FULL)
        assert t.compute_s > 0
        assert t.transfer_s > 0
        assert t.command_s > 0

    def test_loses_small_wins_large(self):
        """Per-pass launch + DMA costs recreate the FPGA-style
        crossover one device class up: the GPU loses the paper's
        small frames and wins very large ones."""
        neon, gpu = create_engine("neon"), create_engine("gpu")
        assert gpu.frame_time(SMALL).total_s > neon.frame_time(SMALL).total_s
        big = FrameShape(1408, 1152)
        assert gpu.frame_time(big).total_s < neon.frame_time(big).total_s

    def test_gpu_mode_energy_dominated_by_accel_rail(self):
        pm = PowerModel()
        assert pm.power_w("gpu") > pm.power_w("fpga") + 2.0
        assert "gpu" in pm.modes()

    def test_paper_modes_unchanged_by_accel_rail(self):
        """The accel rail draws nothing in the paper's modes, so every
        published aggregate stays exactly where the seed pinned it."""
        pm = PowerModel()
        assert pm.rails["accel"]["idle"] == 0.0
        for mode in ("idle", "arm", "neon", "fpga"):
            assert pm.rails["accel"][mode] == 0.0

    def test_unknown_mode_still_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel().power_w("tpu")

    def test_bitwise_identical_to_jit_backend(self, rng):
        """The functional path is the jit arithmetic: same bits."""
        img = rng.standard_normal((24, 32)) * 50.0
        tj = create_engine("jit").transform(2)
        tg = create_engine("gpu").transform(2)
        pj, pg = tj.forward(img), tg.forward(img)
        assert np.array_equal(pj.lowpass, pg.lowpass)
        assert np.array_equal(tj.inverse(pj), tg.inverse(pg))


class TestCalibrationValidation:
    @pytest.mark.parametrize("field", [
        "jit_mac_rate_fwd", "jit_mac_rate_inv", "gpu_mac_rate",
        "gpu_kernel_launch_s", "gpu_word_s",
    ])
    def test_new_rates_must_be_positive(self, field):
        with pytest.raises(CalibrationError):
            Calibration(**{field: 0.0}).validate()
        with pytest.raises(CalibrationError):
            Calibration(**{field: -1.0}).validate()

    def test_defaults_validate(self):
        Calibration().validate()
