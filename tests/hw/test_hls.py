"""HLS wavelet engine: datapath fidelity and cycle accounting."""

import numpy as np
import pytest

from repro.errors import EngineError
from repro.hw.hls import (
    HlsWaveletEngine,
    MODE_IDLE,
    shift_register_dual_fir,
)
from repro.hw.platform import ZynqPlatform


@pytest.fixture
def engine():
    return HlsWaveletEngine()


class TestShiftRegisterReference:
    def test_matches_numpy_correlation(self, rng):
        """The literal Fig. 4 loop equals a decimated FIR correlation
        (oldest sample meets register 0)."""
        taps = 12
        out_len = 10
        hp = rng.standard_normal(taps).astype(np.float32)
        lp = rng.standard_normal(taps).astype(np.float32)
        x = rng.standard_normal(2 * out_len + taps).astype(np.float32)
        hp_out, lp_out = shift_register_dual_fir(x, hp, lp)
        for m in range(out_len):
            window = x[2 * m: 2 * m + taps]
            assert np.isclose(hp_out[m], np.dot(window, hp), atol=1e-4)
            assert np.isclose(lp_out[m], np.dot(window, lp), atol=1e-4)

    def test_rejects_mismatched_registers(self):
        with pytest.raises(EngineError):
            shift_register_dual_fir(np.zeros(32), np.zeros(12), np.zeros(10))

    def test_rejects_odd_taps(self):
        with pytest.raises(EngineError):
            shift_register_dual_fir(np.zeros(32), np.zeros(11), np.zeros(11))

    def test_rejects_short_input(self):
        with pytest.raises(EngineError):
            shift_register_dual_fir(np.zeros(10), np.zeros(12), np.zeros(12))


class TestCoefficientLoading:
    def test_load_and_query(self, engine):
        seconds = engine.load_coefficients(np.ones(12), np.ones(12))
        assert engine.loaded_taps == 12
        assert seconds > 0
        assert engine.stats.coefficient_loads == 1

    def test_oversized_filter_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.load_coefficients(np.ones(64), np.ones(64))

    def test_mismatched_pair_rejected(self, engine):
        with pytest.raises(EngineError):
            engine.load_coefficients(np.ones(12), np.ones(10))

    def test_mode_returns_to_idle(self, engine):
        engine.load_coefficients(np.ones(8), np.ones(8))
        assert engine.mode == MODE_IDLE


class TestForwardLine:
    def test_requires_coefficients(self, engine):
        with pytest.raises(EngineError):
            engine.forward_line(np.zeros(64), 16, step=2)

    def test_decimated_matches_reference_loop(self, engine, rng):
        """forward_line (convolution semantics) equals the Fig. 4 loop
        with reversed coefficient registers — what the driver loads."""
        taps = 12
        out_len = 8
        lp = rng.standard_normal(taps).astype(np.float32)
        hp = rng.standard_normal(taps).astype(np.float32)
        engine.load_coefficients(lp, hp)
        x = rng.standard_normal((out_len - 1) * 2 + taps).astype(np.float32)
        lp_out, hp_out, _ = engine.forward_line(x, out_len, step=2)
        ref_hp, ref_lp = shift_register_dual_fir(
            np.concatenate([x, np.zeros(2, np.float32)]),
            hp[::-1].copy(), lp[::-1].copy())
        assert np.allclose(lp_out, ref_lp[:out_len], atol=1e-4)
        assert np.allclose(hp_out, ref_hp[:out_len], atol=1e-4)

    def test_undecimated_step(self, engine, rng):
        taps = 8
        lp = rng.standard_normal(taps).astype(np.float32)
        hp = rng.standard_normal(taps).astype(np.float32)
        engine.load_coefficients(lp, hp)
        n = 16
        x = rng.standard_normal(n + taps - 1).astype(np.float32)
        lp_out, hp_out, _ = engine.forward_line(x, n, step=1)
        for i in range(n):
            window = x[i: i + taps]
            assert np.isclose(lp_out[i], np.dot(window, lp[::-1]), atol=1e-4)

    def test_short_line_rejected(self, engine):
        engine.load_coefficients(np.ones(12), np.ones(12))
        with pytest.raises(EngineError):
            engine.forward_line(np.zeros(10), 16, step=2)

    def test_bad_step_rejected(self, engine):
        engine.load_coefficients(np.ones(12), np.ones(12))
        with pytest.raises(EngineError):
            engine.forward_line(np.zeros(64), 16, step=3)

    def test_outputs_are_float32(self, engine, rng):
        engine.load_coefficients(np.ones(8), np.ones(8))
        x = rng.standard_normal(64).astype(np.float32)
        lp_out, hp_out, _ = engine.forward_line(x, 16, step=2)
        assert lp_out.dtype == np.float32
        assert hp_out.dtype == np.float32


class TestInverseLine:
    def test_dual_channel_correlation(self, engine, rng):
        taps = 8
        g0 = rng.standard_normal(taps).astype(np.float32)
        g1 = rng.standard_normal(taps).astype(np.float32)
        engine.load_coefficients(g0, g1)
        n = 12
        lo = rng.standard_normal(n + taps - 1).astype(np.float32)
        hi = rng.standard_normal(n + taps - 1).astype(np.float32)
        out, _ = engine.inverse_line(lo, hi, n)
        for i in range(n):
            expected = (np.dot(lo[i: i + taps], g0)
                        + np.dot(hi[i: i + taps], g1))
            assert np.isclose(out[i], expected, atol=1e-4)

    def test_channel_length_mismatch(self, engine):
        engine.load_coefficients(np.ones(8), np.ones(8))
        with pytest.raises(EngineError):
            engine.inverse_line(np.zeros(20), np.zeros(19), 12)


class TestCycleModel:
    def test_cycles_grow_with_line_length(self, engine, rng):
        engine.load_coefficients(np.ones(12), np.ones(12))
        short = rng.standard_normal(2 * 8 + 12).astype(np.float32)
        long = rng.standard_normal(2 * 64 + 12).astype(np.float32)
        _, _, t_short = engine.forward_line(short, 8, step=2)
        _, _, t_long = engine.forward_line(long, 64, step=2)
        assert t_long > t_short

    def test_memcpys_not_pipelined(self, engine):
        """Latency = transfer-in + loop + transfer-out, strictly additive
        (the paper notes VIVADO_HLS does not pipeline the memcpys)."""
        base = engine.line_seconds_estimate(0, 0, 0)
        est = engine.line_seconds_estimate(words_in=100, words_out=100,
                                           loop_iterations=50)
        loop_part = engine.line_seconds_estimate(0, 0, 50) - base
        in_part = engine.line_seconds_estimate(100, 0, 0) - base
        out_part = engine.line_seconds_estimate(0, 100, 0) - base
        assert np.isclose(est - base, loop_part + in_part + out_part)

    def test_stats_accumulate(self, engine, rng):
        engine.load_coefficients(np.ones(8), np.ones(8))
        x = rng.standard_normal(64).astype(np.float32)
        engine.forward_line(x, 16, step=2)
        engine.forward_line(x, 16, step=2)
        assert engine.stats.invocations == 2
        assert engine.stats.cycles > 0

    def test_pl_clock_scales_latency(self, rng):
        fast = HlsWaveletEngine(ZynqPlatform(pl_clock_hz=200e6))
        slow = HlsWaveletEngine(ZynqPlatform(pl_clock_hz=100e6))
        assert np.isclose(slow.line_seconds_estimate(64, 64, 32),
                          2.0 * fast.line_seconds_estimate(64, 64, 32))
