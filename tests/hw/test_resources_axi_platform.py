"""Resource estimation (Table I), AXI models and platform description."""

import numpy as np
import pytest

from repro.errors import AxiError, ConfigurationError
from repro.hw.axi import AcpModel, AxiLiteModel, GpPortModel
from repro.hw.calibration import Calibration, DEFAULT_CALIBRATION
from repro.hw.platform import DEFAULT_PLATFORM, ZynqPlatform
from repro.hw.resources import (
    PAPER_TABLE1,
    EngineConfig,
    estimate_resources,
)


class TestTable1:
    def test_default_config_reproduces_table1(self):
        """The paper's 12-tap engine on the xc7z020 (Table I)."""
        estimate = estimate_resources(EngineConfig())
        assert abs(estimate.registers - PAPER_TABLE1["registers"][0]) <= 200
        assert abs(estimate.luts - PAPER_TABLE1["luts"][0]) <= 200
        assert abs(estimate.slices - PAPER_TABLE1["slices"][0]) <= 100
        assert estimate.bufg == PAPER_TABLE1["bufg"][0]

    def test_utilization_percentages(self):
        util = estimate_resources().utilization("xc7z020clg484-1")
        assert abs(util["registers"] - PAPER_TABLE1["registers"][1]) < 1.5
        assert abs(util["luts"] - PAPER_TABLE1["luts"][1]) < 1.5
        assert abs(util["slices"] - PAPER_TABLE1["slices"][1]) < 1.5
        assert abs(util["bufg"] - PAPER_TABLE1["bufg"][1]) < 1.5

    def test_fits_the_7z020(self):
        assert estimate_resources().fits("xc7z020clg484-1")

    def test_wider_engine_needs_more(self):
        small = estimate_resources(EngineConfig(taps=12))
        large = estimate_resources(EngineConfig(taps=20))
        assert large.luts > small.luts
        assert large.registers > small.registers

    def test_too_big_for_7z010(self):
        """The engine is over half the 7z020; it cannot fit the 7z010."""
        assert not estimate_resources().fits("xc7z010clg400-1")

    def test_unknown_part(self):
        with pytest.raises(ConfigurationError):
            estimate_resources().utilization("xc7z099")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(taps=1)
        with pytest.raises(ConfigurationError):
            EngineConfig(channels=0)

    def test_bram_accounts_io_buffers(self):
        estimate = estimate_resources(EngineConfig(buffer_words=4096))
        assert np.isclose(estimate.bram_kbit, 4096 * 32 * 2 / 1024.0)


class TestAxiModels:
    def test_gp_port_costs_25_cycles_per_word(self):
        """Section V: 'every transfer requires around 25 clock cycles'."""
        gp = GpPortModel()
        one_word = gp.transfer_s(1)
        assert np.isclose(one_word, 25.0 / DEFAULT_PLATFORM.ps_clock_hz)

    def test_acp_much_faster_than_gp(self):
        words = 2048
        acp = AcpModel().transfer_s(words)
        gp = GpPortModel().transfer_s(words)
        assert gp / acp > 5.0  # the reason the paper built a DMA engine

    def test_acp_burst_setup_amortized(self):
        acp = AcpModel()
        assert acp.transfer_cycles(0) == 0.0
        small = acp.transfer_cycles(4) / 4
        large = acp.transfer_cycles(4096) / 4096
        assert small > large

    def test_axilite_write_cost(self):
        lite = AxiLiteModel()
        assert lite.write_s(4) == 4 * lite.write_s(1)
        assert lite.read_s(2) > 0

    @pytest.mark.parametrize("model_call", [
        lambda: AxiLiteModel().write_s(-1),
        lambda: GpPortModel().transfer_s(-5),
        lambda: AcpModel().transfer_cycles(-1),
    ])
    def test_negative_counts_rejected(self, model_call):
        with pytest.raises(AxiError):
            model_call()


class TestPlatform:
    def test_defaults_match_paper(self):
        p = DEFAULT_PLATFORM
        assert p.ps_clock_hz == 533e6   # "PS works at the default of 533"
        assert p.pl_clock_hz == 100e6   # "single clock frequency of 100 MHz"
        assert p.io_buffer_words == 4096
        assert p.buffer_area_words == 2048
        assert p.part == "xc7z020clg484-1"

    def test_acp_moves_two_words_per_cycle(self):
        assert DEFAULT_PLATFORM.acp_words_per_cycle == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZynqPlatform(ps_clock_hz=0)
        with pytest.raises(ConfigurationError):
            ZynqPlatform(io_buffer_areas=0)


class TestCalibration:
    def test_defaults_valid(self):
        DEFAULT_CALIBRATION.validate()

    def test_overrides_return_new_object(self):
        updated = DEFAULT_CALIBRATION.with_overrides(arm_pass_overhead_s=5e-6)
        assert updated is not DEFAULT_CALIBRATION
        assert updated.arm_pass_overhead_s == 5e-6
        assert DEFAULT_CALIBRATION.arm_pass_overhead_s != 5e-6

    def test_invalid_values_rejected(self):
        from repro.errors import CalibrationError
        with pytest.raises(CalibrationError):
            Calibration(arm_mac_rate_fwd=-1.0).validate()
        with pytest.raises(CalibrationError):
            Calibration(neon_vector_fraction_fwd=1.5).validate()
        with pytest.raises(CalibrationError):
            DEFAULT_CALIBRATION.with_overrides(neon_lanes=0)
