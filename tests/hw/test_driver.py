"""Kernel-driver model: protocol surface and Fig. 5 scheduling."""

import numpy as np
import pytest

from repro.errors import DriverError
from repro.hw.driver import (
    IOCTL_GET_PHYS_ADDR,
    IOCTL_SELECT_AREA,
    IOCTL_SET_READ_OFFSET,
    IOCTL_SET_WRITE_OFFSET,
    PassCost,
    WaveletDriver,
)
from repro.hw.platform import ZynqPlatform


@pytest.fixture
def driver():
    return WaveletDriver()


class TestProtocol:
    def test_mmap_returns_live_view(self, driver):
        view = driver.mmap("input")
        view[0] = 42.0
        assert driver.mmap("input")[0] == 42.0

    def test_mmap_unknown_buffer(self, driver):
        with pytest.raises(DriverError):
            driver.mmap("textures")

    def test_phys_addresses_distinct(self, driver):
        in_addr = driver.ioctl(IOCTL_GET_PHYS_ADDR, 0)
        out_addr = driver.ioctl(IOCTL_GET_PHYS_ADDR, 1)
        assert in_addr != out_addr

    def test_offsets(self, driver):
        driver.ioctl(IOCTL_SET_READ_OFFSET, 128)
        driver.ioctl(IOCTL_SET_WRITE_OFFSET, 256)
        assert driver.read_offset == 128
        assert driver.write_offset == 256

    def test_offset_bounds_checked(self, driver):
        with pytest.raises(DriverError):
            driver.ioctl(IOCTL_SET_READ_OFFSET, 999999)

    def test_unknown_ioctl(self, driver):
        with pytest.raises(DriverError):
            driver.ioctl(0xDEAD)

    def test_area_selection_sets_both_offsets(self, driver):
        driver.ioctl(IOCTL_SELECT_AREA, 1)
        assert driver.read_offset == driver.area_words
        assert driver.write_offset == driver.area_words

    def test_bad_area(self, driver):
        with pytest.raises(DriverError):
            driver.ioctl(IOCTL_SELECT_AREA, 5)

    def test_area_words_split(self, driver):
        """4096 words split into two 2048-word areas (Section V)."""
        assert driver.area_words == 2048


class TestLineTransfers:
    def test_write_then_hardware_sees_data(self, driver, rng):
        line = rng.standard_normal(100).astype(np.float32)
        stored = driver.write_line(line, area=0)
        assert np.array_equal(stored, line)

    def test_double_buffer_areas_do_not_alias(self, driver, rng):
        a = rng.standard_normal(64).astype(np.float32)
        b = rng.standard_normal(64).astype(np.float32)
        driver.write_line(a, area=0)
        driver.write_line(b, area=1)
        buf = driver.mmap("input")
        assert np.array_equal(buf[:64], a)
        assert np.array_equal(buf[driver.area_words: driver.area_words + 64], b)

    def test_width_limit_enforced(self, driver):
        """The paper supports image widths up to 2048 pixels."""
        with pytest.raises(DriverError):
            driver.write_line(np.zeros(3000, dtype=np.float32))

    def test_result_roundtrip(self, driver, rng):
        result = rng.standard_normal(50).astype(np.float32)
        driver.store_result(result, area=1)
        read = driver.read_line(50, area=1)
        assert np.array_equal(read, result)


class TestSchedule:
    @staticmethod
    def _passes(n, ps_in=3e-6, ps_out=2e-6, hw=4e-6, cmd=20e-6):
        return [PassCost(ps_in_s=ps_in, ps_out_s=ps_out, hw_s=hw, cmd_s=cmd)
                for _ in range(n)]

    def test_empty_schedule(self, driver):
        assert driver.schedule([]).total_s == 0.0

    def test_serial_mode_sums_everything(self, driver):
        passes = self._passes(10)
        total = driver.schedule(passes, double_buffered=False).total_s
        expected = 10 * (3e-6 + 2e-6 + 4e-6 + 20e-6)
        assert np.isclose(total, expected)

    def test_double_buffering_is_faster(self, driver):
        passes = self._passes(50)
        serial = driver.schedule(passes, double_buffered=False).total_s
        pipelined = driver.schedule(passes, double_buffered=True).total_s
        assert pipelined < serial

    def test_double_buffering_hides_transfers_under_hw(self, driver):
        """With hw time >> PS copies, copies vanish from the total."""
        passes = self._passes(20, ps_in=1e-6, ps_out=1e-6, hw=50e-6, cmd=5e-6)
        breakdown = driver.schedule(passes, double_buffered=True)
        # only the fill of the first buffer shows as transfer time
        assert breakdown.transfer_s <= 1e-6 + 1e-12
        assert np.isclose(breakdown.compute_s, 20 * 50e-6)

    def test_ps_bound_slots_expose_slack(self, driver):
        """With PS copies >> hw time, the pipeline is transfer bound."""
        passes = self._passes(10, ps_in=40e-6, ps_out=30e-6, hw=5e-6, cmd=2e-6)
        breakdown = driver.schedule(passes, double_buffered=True)
        assert breakdown.transfer_s > breakdown.compute_s

    def test_command_cost_never_hidden(self, driver):
        """Completion check + activation serialize in both modes."""
        passes = self._passes(30)
        for db in (False, True):
            breakdown = driver.schedule(passes, double_buffered=db)
            assert np.isclose(breakdown.command_s, 30 * 20e-6)

    def test_pipelined_total_lower_bound(self, driver):
        """Pipelining can never beat the hardware-only critical path."""
        passes = self._passes(25)
        breakdown = driver.schedule(passes, double_buffered=True)
        assert breakdown.total_s >= 25 * (4e-6 + 20e-6)
