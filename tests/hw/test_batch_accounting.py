"""Batched hardware-backend calls account exactly like N serial calls.

The HLS engine model counts per *line* (one invocation per line fed
through the datapath), so a stacked ``(N, H, W)`` primitive call must
increment cycles, transfers and invocations by exactly the sum of the
``N`` per-frame calls — batching amortizes Python dispatch, never the
modelled hardware work.
"""

import numpy as np

from repro.hw.fpga import FpgaEngine


def _engine_stats(backend):
    return backend.engine.stats


class TestHlsBatchAccounting:
    def test_forward_batch_counts_equal_sum_of_per_frame(self, rng):
        frames = rng.standard_normal((3, 24, 24)).astype(np.float32)
        engine = FpgaEngine()

        serial_backend = engine.make_backend()
        serial_transform = engine.transform(levels=2)
        serial_transform.backend = serial_backend
        for i in range(3):
            serial_transform.forward(frames[i])
        serial = _engine_stats(serial_backend)

        batch_backend = engine.make_backend()
        batch_transform = engine.transform(levels=2)
        batch_transform.backend = batch_backend
        batch_transform.forward_batch(frames)
        batched = _engine_stats(batch_backend)

        assert batched.invocations == serial.invocations
        assert batched.cycles == serial.cycles
        assert batched.words_in == serial.words_in
        assert batched.words_out == serial.words_out

    def test_inverse_batch_counts_equal_sum_of_per_frame(self, rng):
        frames = rng.standard_normal((2, 24, 24)).astype(np.float32)
        engine = FpgaEngine()

        serial_backend = engine.make_backend()
        t = engine.transform(levels=2)
        t.backend = serial_backend
        pyramids = [t.forward(frames[i]) for i in range(2)]
        serial_backend.engine.stats.reset()
        for pyr in pyramids:
            t.inverse(pyr)
        serial = _engine_stats(serial_backend)

        batch_backend = engine.make_backend()
        tb = engine.transform(levels=2)
        tb.backend = batch_backend
        stack = tb.forward_batch(frames)
        batch_backend.engine.stats.reset()
        tb.inverse_batch(stack)
        batched = _engine_stats(batch_backend)

        assert batched.invocations == serial.invocations
        assert batched.cycles == serial.cycles
        assert batched.words_in == serial.words_in
        assert batched.words_out == serial.words_out

    def test_coefficient_loads_are_amortized_not_inflated(self, rng):
        """The one counter batching is *allowed* to improve: filter
        registers are reloaded per primitive call, not per frame."""
        frames = rng.standard_normal((3, 24, 24)).astype(np.float32)
        engine = FpgaEngine()

        serial_backend = engine.make_backend()
        t = engine.transform(levels=2)
        t.backend = serial_backend
        for i in range(3):
            t.forward(frames[i])

        batch_backend = engine.make_backend()
        tb = engine.transform(levels=2)
        tb.backend = batch_backend
        tb.forward_batch(frames)

        assert (_engine_stats(batch_backend).coefficient_loads
                <= _engine_stats(serial_backend).coefficient_loads)

    def test_modelled_frame_cost_is_per_frame_regardless_of_executor(self):
        """The analytic model bills per frame; a batched drive's total
        is the exact sum of the per-frame models (asserted end-to-end
        by tests/exec/test_batch_executor.py; here: the model itself
        has no batch discount)."""
        from repro.types import FrameShape
        engine = FpgaEngine()
        one = engine.frame_time(FrameShape(40, 40), levels=2).total_s
        assert one > 0
        # N frames cost exactly N * one in the model — there is no
        # batched entry point to diverge from this
        assert 5 * one == sum(engine.frame_time(FrameShape(40, 40),
                                                levels=2).total_s
                              for _ in range(5))
