"""Power rails and energy accounting against the published numbers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.energy import EnergyMeter, energy_mj
from repro.hw.power import MODES, PowerModel, PowerRecorder


@pytest.fixture
def model():
    return PowerModel()


class TestPowerModel:
    def test_arm_equals_neon(self, model):
        """Paper: 'Fusing using only the ARM processor consumes
        approximately the same power as using ARM+NEON.'"""
        assert np.isclose(model.power_w("arm"), model.power_w("neon"))

    def test_fpga_increase_is_19_2_mw(self, model):
        """Paper: ARM+FPGA consumes 19.2 mW more."""
        assert np.isclose(model.fpga_power_increase_w(), 0.0192, atol=1e-6)

    def test_fpga_increase_is_3_6_percent(self, model):
        increase = model.fpga_power_increase_w() / model.power_w("arm")
        assert abs(increase - 0.036) < 0.001

    def test_idle_below_active(self, model):
        assert model.power_w("idle") < model.power_w("arm")

    def test_rail_breakdown_sums_to_total(self, model):
        for mode in MODES:
            rails = model.rail_breakdown(mode)
            assert np.isclose(sum(rails.values()), model.power_w(mode))

    def test_fpga_mode_shifts_power_to_pl(self, model):
        """PS core draws less (offloaded), PL core draws more."""
        arm = model.rail_breakdown("arm")
        fpga = model.rail_breakdown("fpga")
        assert fpga["vccpint"] < arm["vccpint"]
        assert fpga["vccint"] > arm["vccint"]

    def test_unknown_mode(self, model):
        with pytest.raises(ConfigurationError):
            model.power_w("quantum")

    def test_rails_must_cover_all_modes(self):
        with pytest.raises(ConfigurationError):
            PowerModel(rails={"vccint": {"arm": 0.1}})


class TestPowerRecorder:
    def test_energy_equals_power_times_time(self, model):
        recorder = PowerRecorder(model, sample_period_s=1e-4)
        report = recorder.run_stage("arm", 0.05)
        assert np.isclose(report.joules, model.power_w("arm") * 0.05)
        assert np.isclose(recorder.total_energy_j(), report.joules,
                          rtol=0.01)

    def test_average_power_across_modes(self, model):
        recorder = PowerRecorder(model, sample_period_s=1e-4)
        recorder.run_stage("arm", 0.01)
        recorder.run_stage("fpga", 0.01)
        avg = recorder.average_power_w()
        assert model.power_w("arm") <= avg <= model.power_w("fpga")

    def test_clock_advances(self, model):
        recorder = PowerRecorder(model)
        recorder.run_stage("idle", 0.25)
        recorder.run_stage("arm", 0.25)
        assert np.isclose(recorder.elapsed_s, 0.5)

    def test_negative_duration_rejected(self, model):
        with pytest.raises(ConfigurationError):
            PowerRecorder(model).run_stage("arm", -1.0)

    def test_bad_sample_period(self):
        with pytest.raises(ConfigurationError):
            PowerRecorder(sample_period_s=0.0)


class TestEnergyMeter:
    def test_stage_accumulation(self):
        meter = EnergyMeter(mode="arm")
        meter.add_stage("forward", 0.1)
        meter.add_stage("forward", 0.1)
        meter.add_stage("inverse", 0.05)
        assert np.isclose(meter.total_seconds, 0.25)
        assert np.isclose(meter.stages["forward"].seconds, 0.2)

    def test_total_joules(self, model):
        meter = EnergyMeter(mode="fpga", model=model)
        meter.add_stage("all", 2.0)
        assert np.isclose(meter.total_joules, 2.0 * model.power_w("fpga"))
        assert np.isclose(meter.total_millijoules, meter.total_joules * 1e3)

    def test_energy_mj_helper(self, model):
        assert np.isclose(energy_mj(1.0, "arm", model),
                          model.power_w("arm") * 1e3)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyMeter(mode="arm").add_stage("bad", -0.1)
