"""FPGA functional backend: bit-level agreement with the reference path."""

import numpy as np
import pytest

from repro.dtcwt import Dtcwt2D, dtcwt_banks
from repro.dtcwt.backend import NumpyBackend
from repro.errors import EngineError
from repro.hw.fpga import FpgaEngine, HlsBackend, pad_filter_pair


@pytest.fixture
def banks():
    return dtcwt_banks()


@pytest.fixture
def backend():
    return HlsBackend()


@pytest.fixture
def reference():
    return NumpyBackend(dtype=np.float32)


class TestPadFilterPair:
    def test_alignment(self, banks):
        bank = banks.level1
        f0, f1, center = pad_filter_pair(bank.h0, bank.c_h0,
                                         bank.h1, bank.c_h1)
        assert len(f0) == len(f1)
        assert center == max(bank.c_h0, bank.c_h1)
        # padded filters keep their taps at the right relative offsets
        assert np.allclose(f0[center - bank.c_h0:
                              center - bank.c_h0 + len(bank.h0)], bank.h0)
        assert np.allclose(f1[center - bank.c_h1:
                              center - bank.c_h1 + len(bank.h1)], bank.h1)

    def test_equal_length_inputs_passthrough(self):
        h = np.arange(8.0)
        f0, f1, center = pad_filter_pair(h, 3, h, 3)
        assert np.allclose(f0, h)
        assert center == 3


class TestPrimitiveEquality:
    """Every backend primitive must match the numpy reference in float32."""

    def test_analysis_u(self, rng, backend, reference, banks):
        x = rng.standard_normal((16, 20)).astype(np.float32)
        bank = banks.level1
        for axis in (0, 1):
            lo_h, hi_h = backend.analysis_u(x, bank.h0, bank.c_h0,
                                            bank.h1, bank.c_h1, axis)
            lo_r, hi_r = reference.analysis_u(x, bank.h0, bank.c_h0,
                                              bank.h1, bank.c_h1, axis)
            assert np.allclose(lo_h, lo_r, atol=1e-4)
            assert np.allclose(hi_h, hi_r, atol=1e-4)

    def test_analysis_d(self, rng, backend, reference, banks):
        x = rng.standard_normal((16, 24)).astype(np.float32)
        qs = banks.qshift
        for axis in (0, 1):
            lo_h, hi_h = backend.analysis_d(x, qs.h0a, qs.h1a, axis)
            lo_r, hi_r = reference.analysis_d(x, qs.h0a, qs.h1a, axis)
            assert np.allclose(lo_h, lo_r, atol=1e-4)
            assert np.allclose(hi_h, hi_r, atol=1e-4)

    def test_synthesis_d(self, rng, backend, reference, banks):
        lo = rng.standard_normal((8, 12)).astype(np.float32)
        hi = rng.standard_normal((8, 12)).astype(np.float32)
        qs = banks.qshift
        for axis in (0, 1):
            out_h = backend.synthesis_d(lo, hi, qs.h0a, qs.h1a, axis)
            out_r = reference.synthesis_d(lo, hi, qs.h0a, qs.h1a, axis)
            assert np.allclose(out_h, out_r, atol=1e-4)

    def test_synthesis_u(self, rng, backend, reference, banks):
        u0 = rng.standard_normal((12, 16)).astype(np.float32)
        u1 = rng.standard_normal((12, 16)).astype(np.float32)
        bank = banks.level1
        for axis in (0, 1):
            out_h = backend.synthesis_u(u0, u1, bank.g0, bank.c_g0,
                                        bank.g1, bank.c_g1, axis)
            out_r = reference.synthesis_u(u0, u1, bank.g0, bank.c_g0,
                                          bank.g1, bank.c_g1, axis)
            assert np.allclose(out_h, out_r, atol=1e-4)


class TestFullTransformOnHls:
    def test_roundtrip_through_hardware_path(self, rng):
        x = rng.standard_normal((24, 32)).astype(np.float32)
        t = Dtcwt2D(levels=3, backend=HlsBackend())
        rec = t.inverse(t.forward(x))
        assert np.max(np.abs(rec - x)) < 1e-4

    def test_matches_reference_pyramid(self, rng):
        x = rng.standard_normal((24, 32)).astype(np.float32)
        hw = Dtcwt2D(levels=2, backend=HlsBackend()).forward(x)
        ref = Dtcwt2D(levels=2,
                      backend=NumpyBackend(dtype=np.float32)).forward(x)
        for level in range(2):
            assert np.allclose(hw.highpasses[level], ref.highpasses[level],
                               atol=1e-4)
        assert np.allclose(hw.lowpass, ref.lowpass, atol=1e-4)

    def test_engine_stats_track_invocations(self, rng):
        """The functional path's invocation count equals the analytic
        work model's — the two views of the workload agree."""
        from repro.hw.work import WorkModel
        from repro.types import FrameShape
        backend = HlsBackend()
        x = rng.standard_normal((24, 32)).astype(np.float32)
        Dtcwt2D(levels=3, backend=backend).forward(x)
        expected = WorkModel(FrameShape(32, 24), levels=3).forward_invocations()
        assert backend.engine.stats.invocations == expected

    def test_line_width_limit(self, rng):
        backend = HlsBackend()
        too_wide = rng.standard_normal((4, 4096)).astype(np.float32)
        with pytest.raises(EngineError):
            backend.analysis_d(too_wide, np.ones(14) / 14, np.ones(14) / 14, 1)


class TestMakeBackend:
    def test_engine_produces_working_backend(self, rng):
        engine = FpgaEngine()
        transform = engine.transform(levels=2)
        x = rng.standard_normal((16, 16))
        rec = transform.inverse(transform.forward(x))
        assert np.max(np.abs(rec - x)) < 1e-4

    def test_backends_are_independent(self):
        engine = FpgaEngine()
        b1, b2 = engine.make_backend(), engine.make_backend()
        assert b1.engine is not b2.engine
