"""Analytic work model: counts must match the functional transform."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.work import WorkModel, summarize_passes
from repro.types import FrameShape


class TestInvocationCounts:
    def test_full_frame_forward_count(self):
        """88x72, 3 levels: W+2H at level 1 plus 4(W_l+H_l) per level."""
        wm = WorkModel(FrameShape(88, 72), levels=3)
        expected = (88 + 2 * 72) + 4 * (44 + 36) + 4 * (22 + 18)
        assert wm.forward_invocations() == expected

    def test_inverse_matches_forward_structure(self):
        wm = WorkModel(FrameShape(88, 72), levels=3)
        assert wm.inverse_invocations() == wm.forward_invocations()

    @pytest.mark.parametrize("width,height", [(32, 24), (40, 40), (64, 48)])
    def test_counts_scale_with_perimeter(self, width, height):
        wm = WorkModel(FrameShape(width, height), levels=3)
        small = wm.forward_invocations()
        wm2 = WorkModel(FrameShape(width * 2, height * 2), levels=3)
        # invocations grow linearly with the frame side, not the area
        assert 1.8 < wm2.forward_invocations() / small < 2.2

    def test_odd_sizes_use_ceil_division(self):
        wm = WorkModel(FrameShape(35, 35), levels=3)
        # level 2 sees 18x18 (ceil 35/2): 18 column sweeps + 2*ceil(18/2)
        # row sweeps; level 3 sees 9x9: 9 + 2*ceil(9/2) = 19 per tree
        expected = (35 + 70) + 4 * (18 + 18) + 4 * (9 + 2 * 5)
        assert wm.forward_invocations() == expected


class TestMacCounts:
    def test_macs_scale_with_area(self):
        small = WorkModel(FrameShape(44, 36), levels=3).forward_macs()
        large = WorkModel(FrameShape(88, 72), levels=3).forward_macs()
        assert 3.7 < large / small < 4.3

    def test_known_full_frame_total(self):
        """Pinned regression value: hand-derived in DESIGN.md section 5."""
        assert WorkModel(FrameShape(88, 72), levels=3).forward_macs() == 525888

    def test_more_levels_more_macs(self):
        base = WorkModel(FrameShape(64, 64), levels=1).forward_macs()
        deeper = WorkModel(FrameShape(64, 64), levels=3).forward_macs()
        assert deeper > base

    def test_level_work_decays_geometrically(self):
        wm = WorkModel(FrameShape(88, 72), levels=3)
        per_level = {}
        for p in wm.forward_passes():
            per_level[p.level] = per_level.get(p.level, 0) + p.macs
        assert per_level[2] > per_level[3]
        # each q-shift level does ~4x less than the previous
        assert 3.0 < per_level[2] / per_level[3] < 5.0


class TestFusionCoefficients:
    def test_full_frame_count(self):
        """6 complex bands per level + 4 low-pass trees."""
        wm = WorkModel(FrameShape(88, 72), levels=3)
        expected = 6 * (44 * 36) + 6 * (22 * 18) + 6 * (11 * 9) + 4 * (11 * 9)
        assert wm.fusion_coefficients() == expected

    def test_matches_functional_pyramid(self, rng):
        """The analytic count equals the real pyramid's size (even-size
        frames, where no padding happens)."""
        from repro.dtcwt import Dtcwt2D
        shape = FrameShape(64, 48)
        wm = WorkModel(shape, levels=3)
        pyr = Dtcwt2D(levels=3).forward(rng.standard_normal(shape.array_shape))
        band_coeffs = sum(h[0].size * 6 // 6 * 6 for h in pyr.highpasses) // 1
        total = sum(h.size for h in pyr.highpasses) + pyr.lowpass.size
        assert wm.fusion_coefficients() == total


class TestPassRecords:
    def test_words_are_positive(self):
        wm = WorkModel(FrameShape(40, 40), levels=2)
        for p in wm.forward_passes() + wm.inverse_passes():
            assert p.words_in > 0 and p.words_out > 0
            assert p.out_len > 0 and p.macs > 0

    def test_directions_labelled(self):
        wm = WorkModel(FrameShape(40, 40), levels=2)
        assert {p.direction for p in wm.forward_passes()} == {"forward"}
        assert {p.direction for p in wm.inverse_passes()} == {"inverse"}

    def test_summary(self):
        wm = WorkModel(FrameShape(40, 40), levels=2)
        summary = summarize_passes(wm.forward_passes())
        assert summary["invocations"] == wm.forward_invocations()
        assert summary["macs"] == wm.forward_macs()
        assert summary["levels"] == [1, 2]

    def test_bad_levels(self):
        with pytest.raises(ConfigurationError):
            WorkModel(FrameShape(32, 32), levels=0)
