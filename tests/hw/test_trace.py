"""Schedule tracing: event replay must agree with the closed form."""

import json

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hw.driver import PassCost, WaveletDriver
from repro.hw.fpga import FpgaEngine
from repro.hw.trace import (
    LANE_HW,
    LANE_PS,
    ScheduleTracer,
    trace_forward,
)
from repro.types import FrameShape


def _passes(n=20, ps_in=3e-6, ps_out=2e-6, hw=4e-6, cmd=25e-6):
    return [PassCost(ps_in_s=ps_in, ps_out_s=ps_out, hw_s=hw, cmd_s=cmd)
            for _ in range(n)]


class TestTracerOracle:
    @pytest.mark.parametrize("double_buffered", [True, False])
    def test_makespan_matches_driver_closed_form(self, double_buffered):
        passes = _passes(30)
        tracer = ScheduleTracer(double_buffered=double_buffered)
        makespan = tracer.run(passes)
        closed = WaveletDriver().schedule(
            passes, double_buffered=double_buffered).total_s
        assert np.isclose(makespan, closed, rtol=1e-12)

    @pytest.mark.parametrize("double_buffered", [True, False])
    def test_random_costs_still_agree(self, double_buffered, rng):
        passes = [PassCost(*rng.uniform(0, 1e-4, 4)) for _ in range(25)]
        tracer = ScheduleTracer(double_buffered=double_buffered)
        makespan = tracer.run(passes)
        closed = WaveletDriver().schedule(
            passes, double_buffered=double_buffered).total_s
        assert np.isclose(makespan, closed, rtol=1e-9)

    def test_empty_schedule(self):
        assert ScheduleTracer().run([]) == 0.0


class TestEvents:
    def test_event_counts(self):
        tracer = ScheduleTracer(double_buffered=False)
        tracer.run(_passes(5))
        # serial: in + cmd + hw + out per pass
        assert len(tracer.events) == 20
        assert sum(1 for e in tracer.events if e.lane == LANE_HW) == 5

    def test_no_overlap_within_a_lane(self):
        tracer = ScheduleTracer(double_buffered=True)
        tracer.run(_passes(15))
        for lane in (LANE_PS, LANE_HW):
            spans = sorted((e.start_s, e.end_s) for e in tracer.events
                           if e.lane == lane)
            for (s0, e0), (s1, _) in zip(spans, spans[1:]):
                assert s1 >= e0 - 1e-15

    def test_pipelining_overlaps_lanes(self):
        """With double buffering a PS copy must run during a HW pass."""
        tracer = ScheduleTracer(double_buffered=True)
        tracer.run(_passes(10, ps_in=10e-6, hw=30e-6))
        hw_spans = [(e.start_s, e.end_s) for e in tracer.events
                    if e.lane == LANE_HW]
        ps_copies = [e for e in tracer.events
                     if e.lane == LANE_PS and "memcpy" in e.name]
        overlapped = any(
            ps.start_s < hw_end and ps.end_s > hw_start
            for ps in ps_copies for hw_start, hw_end in hw_spans)
        assert overlapped

    def test_utilization_bounds(self):
        tracer = ScheduleTracer()
        tracer.run(_passes(10))
        for lane in (LANE_PS, LANE_HW):
            assert 0.0 < tracer.utilization(lane) <= 1.0


class TestExports:
    def test_chrome_trace_schema(self):
        tracer = ScheduleTracer()
        tracer.run(_passes(4))
        doc = json.loads(tracer.to_chrome_trace())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == len(tracer.events)
        assert all({"name", "ts", "dur", "pid", "tid"} <= set(e) for e in spans)

    def test_ascii_gantt_renders(self):
        tracer = ScheduleTracer()
        tracer.run(_passes(6))
        text = tracer.to_ascii_gantt(width=40)
        assert LANE_PS in text and LANE_HW in text
        assert "#" in text

    def test_empty_gantt(self):
        assert "(empty trace)" in ScheduleTracer().to_ascii_gantt()


class TestTraceForward:
    def test_fpga_forward_trace(self):
        """The traced makespan equals the scheduled pass pipeline (the
        engine's total adds coefficient-reload overhead on top)."""
        engine = FpgaEngine()
        shape = FrameShape(40, 40)
        tracer = trace_forward(engine, shape, levels=3)
        passes = engine.work_model(shape, 3).forward_passes()
        scheduled = engine._schedule(passes, "forward").total_s  # noqa: SLF001
        assert np.isclose(tracer.makespan_s, scheduled, rtol=1e-9)
        assert tracer.makespan_s < engine.forward_time(shape, 3).total_s

    def test_command_dominates_the_ps_lane(self):
        """The tracer shows the paper's bottleneck: the PS is busy with
        commands, the PL mostly idles at paper-sized frames."""
        tracer = trace_forward(FpgaEngine(), FrameShape(40, 40), 3)
        assert tracer.utilization(LANE_PS) > 0.8
        assert tracer.utilization(LANE_HW) < 0.2

    def test_requires_fpga_engine(self):
        from repro.hw.arm import ArmEngine
        with pytest.raises(HardwareModelError):
            trace_forward(ArmEngine(), FrameShape(40, 40))
