"""Design-space exploration, DVFS and vectorization-strategy models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.design_space import (
    DesignPoint,
    EvaluatedPoint,
    explore,
    frame_seconds,
    pareto_frontier,
    resources_for,
)
from repro.hw.dvfs import (
    PS_OPERATING_POINTS,
    best_operating_point,
    scaled_calibration,
    scaled_power_model,
    sweep_operating_points,
)
from repro.hw.vectorization import (
    AUTO,
    MANUAL,
    VectorizationStrategy,
    compare_strategies,
    vectorization_report,
)
from repro.types import FrameShape


class TestDesignSpace:
    def test_paper_point_is_fully_parallel(self):
        point = DesignPoint(taps=12, unroll=12)
        assert point.initiation_interval == 1

    def test_folding_multiplies_ii(self):
        assert DesignPoint(taps=12, unroll=6).initiation_interval == 2
        assert DesignPoint(taps=12, unroll=1).initiation_interval == 12

    def test_folding_trades_time_for_area(self):
        full = DesignPoint(taps=12, unroll=12)
        folded = DesignPoint(taps=12, unroll=2)
        shape = FrameShape(88, 72)
        assert frame_seconds(folded, shape) > frame_seconds(full, shape)
        assert resources_for(folded).slices < resources_for(full).slices

    def test_unroll_bounds(self):
        with pytest.raises(ConfigurationError):
            DesignPoint(taps=12, unroll=13)
        with pytest.raises(ConfigurationError):
            DesignPoint(taps=12, unroll=0)

    def test_pareto_frontier_is_nondominated(self):
        points = explore()
        frontier = pareto_frontier(points)
        assert frontier  # never empty
        for a in frontier:
            for b in points:
                dominates = (b.seconds_per_frame < a.seconds_per_frame
                             and b.slices < a.slices)
                assert not dominates

    def test_all_default_points_fit_the_7z020(self):
        assert all(e.fits for e in explore())

    def test_timing_closure_model(self):
        """High unroll degrades achievable clock (longer adder trees)."""
        full = DesignPoint(taps=12, unroll=12, pl_clock_hz=200e6)
        folded = DesignPoint(taps=12, unroll=2, pl_clock_hz=200e6)
        assert full.achievable_clock_hz < folded.achievable_clock_hz


class TestDvfs:
    def test_scaling_calibration_speeds_up_cpu(self):
        fast = scaled_calibration(800e6)
        base = scaled_calibration(533e6)
        assert fast.arm_mac_rate_fwd > base.arm_mac_rate_fwd
        assert fast.fpga_driver_invocation_s < base.fpga_driver_invocation_s

    def test_base_point_reproduces_defaults(self):
        from repro.hw.calibration import DEFAULT_CALIBRATION
        cal = scaled_calibration(533e6)
        assert np.isclose(cal.arm_mac_rate_fwd,
                          DEFAULT_CALIBRATION.arm_mac_rate_fwd)

    def test_power_scales_superlinearly_with_frequency(self):
        """f V^2 scaling: 800 MHz draws more than 800/533 x the power."""
        slow = scaled_power_model(533e6)
        fast = scaled_power_model(800e6)
        dynamic_slow = slow.power_w("arm") - slow.power_w("idle")
        dynamic_fast = fast.power_w("arm") - fast.power_w("idle")
        assert dynamic_fast / dynamic_slow > 800.0 / 533.0

    def test_base_power_model_unchanged(self):
        model = scaled_power_model(533e6)
        assert np.isclose(model.power_w("arm"), 0.533, atol=1e-6)
        assert np.isclose(model.fpga_power_increase_w(), 0.0192, atol=1e-6)

    def test_unknown_operating_point(self):
        with pytest.raises(ConfigurationError):
            scaled_power_model(123e6)

    def test_sweep_covers_all_points_and_engines(self):
        results = sweep_operating_points(FrameShape(64, 48))
        assert len(results) == len(PS_OPERATING_POINTS) * 3
        assert {r.engine for r in results} == {"arm", "neon", "fpga"}

    def test_faster_ps_always_faster_frames(self):
        results = sweep_operating_points(FrameShape(88, 72))
        arm_times = {r.ps_hz: r.seconds_per_frame
                     for r in results if r.engine == "arm"}
        ordered = [arm_times[f] for f in sorted(arm_times)]
        assert ordered == sorted(ordered, reverse=True)

    def test_best_point_objectives(self):
        results = sweep_operating_points(FrameShape(88, 72))
        best_time = best_operating_point(results, "time")
        best_energy = best_operating_point(results, "energy")
        assert best_time.seconds_per_frame == min(
            r.seconds_per_frame for r in results)
        assert best_energy.millijoules_per_frame == min(
            r.millijoules_per_frame for r in results)
        with pytest.raises(ConfigurationError):
            best_operating_point(results, "vibes")

    def test_fpga_remains_best_engine_at_full_frame_everywhere(self):
        """The engine ranking at 88x72 is robust across PS frequency."""
        results = sweep_operating_points(FrameShape(88, 72))
        for ps_hz in PS_OPERATING_POINTS:
            at_point = {r.engine: r.millijoules_per_frame
                        for r in results if r.ps_hz == ps_hz}
            assert at_point["fpga"] < at_point["neon"] < at_point["arm"]


class TestVectorization:
    def test_both_strategies_beat_scalar(self):
        times = compare_strategies(FrameShape(88, 72))
        assert times["manual"] < times["scalar"]
        assert times["auto"] < times["scalar"]

    def test_manual_and_auto_similar(self):
        """Paper: 'Both the manual and auto vectorization produced the
        similar performance enhancement.'"""
        times = compare_strategies(FrameShape(88, 72))
        gain_manual = 1 - times["manual"] / times["scalar"]
        gain_auto = 1 - times["auto"] / times["scalar"]
        assert abs(gain_manual - gain_auto) < 0.02

    def test_strategy_validation(self):
        with pytest.raises(ConfigurationError):
            VectorizationStrategy("bad", coverage=1.5, lane_efficiency=0.8,
                                  loop_overhead_macs=0)
        with pytest.raises(ConfigurationError):
            VectorizationStrategy("bad", coverage=0.5, lane_efficiency=0.0,
                                  loop_overhead_macs=0)

    def test_report_flags_epilogues_for_odd_sizes(self):
        report = vectorization_report(FrameShape(35, 35))
        epilogues = [r for r in report if "epilogue" in r.reason]
        assert epilogues  # 35 is not a multiple of 4

    def test_report_clean_for_aligned_sizes(self):
        """64x64 keeps every level's loop length a multiple of 4 —
        decimation halves 64 -> 32 -> 16 -> 8 without going ragged."""
        report = vectorization_report(FrameShape(64, 64))
        assert all("multiple of 4" in r.reason for r in report)

    def test_even_input_can_still_produce_ragged_loops(self):
        """32x24 is lane-aligned at level 1, but decimation produces
        length-6 and length-3 loops deeper down — the subtle epilogue
        cost the Section IV masking trick cannot remove."""
        report = vectorization_report(FrameShape(32, 24))
        assert any("epilogue" in r.reason for r in report)

    def test_strategies_exported_with_expected_shape(self):
        assert MANUAL.coverage >= AUTO.coverage
        assert MANUAL.loop_overhead_macs > AUTO.loop_overhead_macs
