"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.arm import ArmEngine
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine
from repro.types import FrameShape
from repro.video.scene import SyntheticScene


@pytest.fixture
def rng():
    return np.random.default_rng(20160314)


@pytest.fixture
def random_image(rng):
    """A 48x64 random test image (rows, cols)."""
    return rng.standard_normal((48, 64))


@pytest.fixture
def structured_pair():
    """A (visible, thermal) pair with complementary information."""
    yy, xx = np.mgrid[0:72, 0:88]
    visible = (100.0 + 40.0 * np.sin(xx / 3.5)
               + 25.0 * (yy > 36) + 0.5 * yy)
    thermal = (60.0 + 150.0 * np.exp(-((xx - 60) ** 2 + (yy - 30) ** 2) / 90.0)
               + 90.0 * np.exp(-((xx - 20) ** 2 + (yy - 55) ** 2) / 40.0))
    return visible, thermal


@pytest.fixture
def full_frame():
    return FrameShape(88, 72)


@pytest.fixture
def small_frame():
    return FrameShape(32, 24)


@pytest.fixture(scope="session")
def arm_engine():
    return ArmEngine()


@pytest.fixture(scope="session")
def neon_engine():
    return NeonEngine()


@pytest.fixture(scope="session")
def fpga_engine():
    return FpgaEngine()


@pytest.fixture
def scene():
    return SyntheticScene(width=96, height=80, seed=42)
