"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.arm import ArmEngine
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine
from repro.types import FrameShape
from repro.video.scene import SyntheticScene


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "soak: long-running churn/endurance tests (skipped unless "
        "selected with -m soak — CI runs them in their own "
        "deadlock-guarded step)")


def pytest_collection_modifyitems(config, items):
    # soak tests only run when explicitly asked for, so the tier-1 and
    # coverage suites stay fast; `-m soak` (the CI soak step) selects
    # them, everything else skips them
    if "soak" in (config.getoption("-m") or ""):
        return
    skip = pytest.mark.skip(reason="soak test: run with -m soak")
    for item in items:
        if "soak" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def rng():
    return np.random.default_rng(20160314)


@pytest.fixture
def random_image(rng):
    """A 48x64 random test image (rows, cols)."""
    return rng.standard_normal((48, 64))


@pytest.fixture
def structured_pair():
    """A (visible, thermal) pair with complementary information."""
    yy, xx = np.mgrid[0:72, 0:88]
    visible = (100.0 + 40.0 * np.sin(xx / 3.5)
               + 25.0 * (yy > 36) + 0.5 * yy)
    thermal = (60.0 + 150.0 * np.exp(-((xx - 60) ** 2 + (yy - 30) ** 2) / 90.0)
               + 90.0 * np.exp(-((xx - 20) ** 2 + (yy - 55) ** 2) / 40.0))
    return visible, thermal


@pytest.fixture
def full_frame():
    return FrameShape(88, 72)


@pytest.fixture
def small_frame():
    return FrameShape(32, 24)


@pytest.fixture(scope="session")
def arm_engine():
    return ArmEngine()


@pytest.fixture(scope="session")
def neon_engine():
    return NeonEngine()


@pytest.fixture(scope="session")
def fpga_engine():
    return FpgaEngine()


@pytest.fixture
def scene():
    return SyntheticScene(width=96, height=80, seed=42)


def _assert_bitwise_parity(reference, results, *, costs=True, label=""):
    """Golden-parity check shared by the executor, graph and serve
    suites: ``results`` must be *bitwise* identical to ``reference``
    (lists of :class:`repro.session.FusedFrameResult`) — same pixels,
    same frame order, and (unless ``costs=False``, for deliberately
    re-attributed accounting) identical modelled time/energy and
    engine labels.  The package-wide invariant: scheduling may change
    wall-clock, never a single output bit.
    """
    where = f" [{label}]" if label else ""
    assert len(results) == len(reference), \
        f"frame count mismatch{where}: {len(results)} != {len(reference)}"
    for ref, got in zip(reference, results):
        assert got.index == ref.index, \
            f"frame order diverged{where}: {got.index} != {ref.index}"
        assert np.array_equal(ref.frame.pixels, got.frame.pixels), \
            f"frame {ref.index} pixels diverged{where}"
        if costs:
            assert got.model_seconds == ref.model_seconds, \
                f"frame {ref.index} modelled seconds diverged{where}"
            assert got.model_millijoules == ref.model_millijoules, \
                f"frame {ref.index} modelled energy diverged{where}"
            assert got.engine == ref.engine, \
                f"frame {ref.index} engine label diverged{where}"


@pytest.fixture
def assert_bitwise_parity():
    """The shared run-serial/hash-frames/compare-executor helper."""
    return _assert_bitwise_parity
