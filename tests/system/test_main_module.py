"""``python -m repro`` entry point and the deprecated telemetry alias."""

import importlib
import subprocess
import sys
import warnings
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestMainModule:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )

    def test_python_m_repro_demo_smoke(self):
        proc = self._run("demo", "--frames", "2", "--size", "40x40",
                         "--levels", "2", "--engine", "neon", "--seed", "7")
        assert proc.returncode == 0, proc.stderr
        assert "frames fused" in proc.stdout

    def test_python_m_repro_batch_executor_flag(self):
        proc = self._run("demo", "--frames", "3", "--size", "40x40",
                         "--levels", "2", "--engine", "neon", "--seed", "7",
                         "--executor", "batch", "--batch-size", "2",
                         "--json")
        assert proc.returncode == 0, proc.stderr
        assert '"executor": "batch"' in proc.stdout

    def test_python_m_repro_error_path(self):
        proc = self._run("demo", "--size", "not-a-size")
        assert proc.returncode == 2  # argparse usage error
        assert "88x72" in proc.stderr


class TestTelemetryAlias:
    def test_alias_is_the_session_class(self):
        import repro.session.telemetry as real
        import repro.system.telemetry as shim
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert shim.FrameTelemetry is real.FrameTelemetry
            assert shim.TelemetrySummary is real.TelemetrySummary

    def test_alias_access_warns(self):
        shim = importlib.import_module("repro.system.telemetry")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim.FrameTelemetry
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_unknown_attribute_raises(self):
        import repro.system.telemetry as shim
        try:
            shim.NoSuchThing
        except AttributeError as exc:
            assert "NoSuchThing" in str(exc)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected AttributeError")

    def test_package_import_is_warning_free(self):
        """`import repro.system` must not trigger the deprecation —
        only explicit use of the deprecated module path does."""
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c",
             "import repro.system; repro.system.FrameTelemetry"],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
