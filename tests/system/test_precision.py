"""The precision-selectable datapath, end to end.

Config validation, bitwise guarantees across sessions and executors,
and the CLI ``--precision`` surface.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.session import FusionConfig, FusionSession, SyntheticSource
from repro.types import FrameShape
from repro.video.scene import SyntheticScene

SMALL = FrameShape(40, 40)


def small_config(**overrides):
    defaults = dict(engine="neon", fusion_shape=SMALL, levels=2,
                    scene=SyntheticScene(width=96, height=80, seed=5))
    defaults.update(overrides)
    return FusionConfig(**defaults)


def fused_pixels(config, limit=3):
    """The fused uint8 output frames — the session's public product."""
    session = FusionSession(config)
    source = SyntheticSource(scene=SyntheticScene(width=96, height=80,
                                                  seed=5))
    return [r.pixels for r in session.stream(source, limit=limit)]


class TestConfigValidation:
    def test_invalid_precision_rejected(self):
        with pytest.raises(ConfigurationError, match="precision"):
            small_config(precision="float16")

    def test_fpga_cannot_run_float64(self):
        with pytest.raises(ConfigurationError, match="float64"):
            small_config(engine="fpga", precision="float64")

    def test_team_members_validated_eagerly(self):
        with pytest.raises(ConfigurationError, match="float64"):
            small_config(engine="adaptive", executor="hetero",
                         engine_team=("arm", "fpga"),
                         precision="float64")

    def test_scheduler_modes_accept_float64(self):
        """adaptive/online filter candidates at runtime rather than
        failing eagerly — the CPU engines can always run float64."""
        small_config(engine="adaptive", precision="float64")
        small_config(engine="online", precision="float64")


class TestEndToEndParity:
    def test_explicit_float32_is_bitwise_native(self):
        """Every engine is float32-native, so pinning float32
        explicitly must not change a single bit."""
        native = fused_pixels(small_config(precision=None))
        pinned = fused_pixels(small_config(precision="float32"))
        for a, b in zip(native, pinned):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("precision", ["float32", "float64"])
    def test_jit_engine_is_bitwise_arm(self, precision):
        """Kernel swap at fixed dtype is never a numerics change."""
        arm = fused_pixels(small_config(engine="arm",
                                        precision=precision))
        jit = fused_pixels(small_config(engine="jit",
                                        precision=precision))
        for a, b in zip(arm, jit):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("precision,expect",
                             [(None, np.float32),
                              ("float64", np.float64)])
    def test_session_fusers_run_at_working_dtype(self, precision, expect):
        session = FusionSession(small_config(engine="arm",
                                             precision=precision))
        dtypes = {f.transform.backend.dtype
                  for f in session._fusers.values()}
        assert dtypes == {np.dtype(expect)}

    @pytest.mark.parametrize("executor", ["serial", "pipeline", "batch"])
    def test_precision_survives_every_executor(self, executor):
        frames = fused_pixels(small_config(engine="jit",
                                           precision="float64",
                                           executor=executor,
                                           workers=2))
        serial = fused_pixels(small_config(engine="jit",
                                           precision="float64"))
        for a, b in zip(frames, serial):
            assert np.array_equal(a, b)

    def test_adaptive_float64_streams(self):
        """The scheduler silently drops the float32-only FPGA from its
        candidate set and still fuses every frame."""
        session = FusionSession(small_config(engine="adaptive",
                                             precision="float64"))
        source = SyntheticSource(scene=SyntheticScene(width=96,
                                                      height=80, seed=5))
        results = list(session.stream(source, limit=2))
        assert len(results) == 2
        assert all(r.engine != "fpga" for r in results)


class TestCliPrecision:
    def test_demo_accepts_precision(self, capsys):
        assert main(["demo", "--frames", "2", "--size", "40x40",
                     "--levels", "2", "--engine", "jit",
                     "--precision", "float32", "--json"]) == 0

    def test_plan_explain_shows_kernel_bindings(self, capsys):
        assert main(["plan", "--size", "40x40", "--levels", "2",
                     "--engine", "jit", "--precision", "float64",
                     "--explain"]) == 0
        out = capsys.readouterr().out
        assert "kernel bindings" in out
        assert "kernel=jit dtype=float64" in out

    def test_plan_rejects_impossible_precision(self, capsys):
        assert main(["plan", "--size", "40x40", "--levels", "2",
                     "--engine", "fpga", "--precision", "float64"]) != 0

    def test_tune_accepts_precision(self, tmp_path, capsys):
        assert main(["tune", "--size", "32x32", "--levels", "2",
                     "--engine", "neon", "--precision", "float64",
                     "--frames", "2",
                     "--cache-dir", str(tmp_path)]) == 0
