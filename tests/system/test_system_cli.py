"""Sweep runtime, the CLI, and the deprecated system stubs."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.registry import create_engine
from repro.session import FusionReport, FusionSession
from repro.system.runtime import (
    energy_sweep,
    find_crossover,
    format_rows,
    forward_stage_sweep,
    total_time_sweep,
)
from repro.types import PAPER_FRAME_SIZES, FrameShape
from repro.video.scene import SyntheticScene


@pytest.fixture
def small_scene():
    return SyntheticScene(width=96, height=80, seed=3)


class TestDeprecatedSystemStubs:
    """The legacy entry points are pure re-export stubs: every name
    warns on access and resolves to its session-layer equivalent."""

    def test_video_fusion_system_is_the_session(self):
        import repro.system.fusion_system as legacy
        with pytest.warns(DeprecationWarning, match="FusionSession"):
            assert legacy.VideoFusionSystem is FusionSession
        with pytest.warns(DeprecationWarning):
            assert legacy.SystemReport is FusionReport

    def test_engine_helpers_resolve_to_registry(self):
        import repro.system.fusion_system as legacy
        with pytest.warns(DeprecationWarning):
            make_engine = legacy.make_engine
        assert make_engine is create_engine
        for name in ("arm", "neon", "fpga"):
            assert make_engine(name).name == name
        with pytest.raises(ConfigurationError):
            make_engine("abacus")
        with pytest.warns(DeprecationWarning):
            assert set(legacy.ENGINE_NAMES) >= {"arm", "neon", "fpga",
                                                "adaptive"}

    def test_top_level_reexport_warns(self):
        import repro
        with pytest.warns(DeprecationWarning):
            assert repro.VideoFusionSystem is FusionSession
        with pytest.raises(AttributeError):
            repro.NoSuchThing

    def test_resolved_class_runs_the_legacy_workload(self, small_scene):
        import repro.system.fusion_system as legacy
        with pytest.warns(DeprecationWarning):
            cls = legacy.VideoFusionSystem
        with cls(engine="neon", fusion_shape=FrameShape(40, 40),
                 levels=2, scene=small_scene) as session:
            report = session.run(2)
        assert report.frames == 2
        assert report.engine_used == "neon"
        assert report.model_fps > 0
        assert report.millijoules_per_frame > 0
        assert "qabf" in report.quality

    def test_unknown_attribute_still_raises(self):
        import repro.system.fusion_system as legacy
        with pytest.raises(AttributeError):
            legacy.pipeline


class TestWarningFreeImport:
    def test_importing_repro_raises_no_warnings(self):
        """DeprecationWarning escalated to an error: a clean
        interpreter must import the package (and repro.system, whose
        stubs are lazy) silently."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        result = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c",
             "import repro, repro.system, repro.exec, repro.graph; "
             "print('clean')"],
            capture_output=True, text=True, env=env, timeout=120)
        assert result.returncode == 0, result.stderr
        assert "clean" in result.stdout


class TestRuntimeSweeps:
    def test_sweep_covers_paper_sizes(self):
        rows = forward_stage_sweep()
        assert [r.shape for r in rows] == list(PAPER_FRAME_SIZES)
        for row in rows:
            assert set(row.values) == {"arm", "neon", "fpga"}

    def test_energy_sweep_units(self):
        rows = energy_sweep(frames=10)
        full = rows[-1]
        assert full.shape == FrameShape(88, 72)
        # hundreds of millijoules for 10 frames (Fig. 10's axis)
        assert 300 < full.values["arm"] < 1500

    def test_find_crossover(self):
        """First paper size where FPGA beats NEON on total time: the
        model places it at 40x40 (the paper's text says 'beyond 40x40';
        its own -48.1 % anchor pulls the model to the window edge)."""
        rows = total_time_sweep()
        crossover = find_crossover(rows, "fpga", "neon")
        assert crossover in (FrameShape(40, 40), FrameShape(64, 48))

    def test_format_rows_renders_every_size(self):
        text = format_rows(forward_stage_sweep(), "s", "Fig 9a")
        for shape in PAPER_FRAME_SIZES:
            assert str(shape) in text
        assert "ARM" in text and "NEON" in text and "FPGA" in text


class TestCli:
    def test_schedule_command(self, capsys):
        from repro.cli import main
        assert main(["schedule", "--size", "32x24"]) == 0
        out = capsys.readouterr().out
        assert "neon" in out and "chosen" in out

    def test_sweep_command(self, capsys):
        from repro.cli import main
        assert main(["sweep", "--table", "fig10"]) == 0
        assert "Fig. 10" in capsys.readouterr().out

    def test_fuse_command_writes_pgms(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "fused"
        assert main(["fuse", "--size", "40x40", "--levels", "2",
                     "--output", str(out)]) == 0
        for name in ("visible.pgm", "thermal.pgm", "fused.pgm"):
            path = out / name
            assert path.exists()
            header = path.read_bytes()[:2]
            assert header == b"P5"

    def test_demo_command(self, capsys):
        from repro.cli import main
        assert main(["demo", "--frames", "1", "--size", "40x40",
                     "--levels", "2", "--engine", "neon"]) == 0
        out = capsys.readouterr().out
        assert "modelled fps" in out

    @pytest.mark.parametrize("executor", ["pipeline", "hetero"])
    def test_demo_executor_flag(self, executor, capsys):
        from repro.cli import main
        assert main(["demo", "--frames", "2", "--size", "40x40",
                     "--levels", "2", "--engine", "neon",
                     "--executor", executor, "--workers", "2",
                     "--queue-depth", "2"]) == 0
        out = capsys.readouterr().out
        assert f"executor         : {executor}" in out
        assert "wall-clock fps" in out

    def test_demo_json_output(self, capsys):
        import json
        from repro.cli import main
        assert main(["demo", "--frames", "2", "--size", "40x40",
                     "--levels", "2", "--engine", "neon", "--seed", "7",
                     "--executor", "pipeline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frames"] == 2
        assert payload["engine_used"] == "neon"
        assert payload["throughput"]["executor"] == "pipeline"
        assert payload["throughput"]["wall_fps"] > 0

    def test_fuse_json_output(self, tmp_path, capsys):
        import json
        from repro.cli import main
        out = tmp_path / "fused"
        assert main(["fuse", "--size", "40x40", "--levels", "2",
                     "--output", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frames"] == 1
        assert (out / "fused.pgm").exists()

    def test_demo_online_engine(self, capsys):
        from repro.cli import main
        assert main(["demo", "--frames", "3", "--size", "32x24",
                     "--levels", "2", "--engine", "online"]) == 0
        assert "engine used" in capsys.readouterr().out

    def test_plan_command_prints_graph_and_plan(self, capsys):
        from repro.cli import main
        assert main(["plan", "--size", "40x40", "--levels", "2",
                     "--engine", "neon"]) == 0
        out = capsys.readouterr().out
        assert "FusionGraph" in out and "FusionPlan" in out
        for stage in ("ingest", "visible", "thermal", "fuse", "finalize"):
            assert stage in out
        assert "batch groups" in out

    def test_plan_json_output(self, capsys):
        from repro.cli import main
        assert main(["plan", "--size", "40x40", "--levels", "2",
                     "--engine", "adaptive", "--executor", "batch",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schedule"] == ["ingest", "visible", "thermal",
                                       "fuse", "finalize"]
        assert payload["executor"] == "batch"
        assert payload["batch_groups"] == [["visible", "thermal", "fuse"]]
        assert payload["model_seconds_per_frame"] > 0
        placements = {s["name"]: s["placement"] for s in payload["stages"]}
        assert placements["fuse"] in ("arm", "neon", "fpga")

    def test_plan_temporal_and_team(self, capsys):
        from repro.cli import main
        assert main(["plan", "--temporal", "--registration",
                     "--engine", "neon", "--size", "40x40",
                     "--levels", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sequential_mid"] is True
        assert "register" in payload["head"]
        assert payload["mid"] == ["temporal"]

        assert main(["plan", "--executor", "hetero", "--engine-team",
                     "fpga", "neon", "--engine", "neon", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["affinity"] == {"fuse": "fpga"}

    def _serve_spec(self, tmp_path, **top):
        spec = {
            "pool": {"neon": 1, "fpga": 1},
            "max_in_flight": 4,
            "stream_queue_depth": 2,
            "streams": [
                {"name": "cam-a", "frames": 3, "seed": 1,
                 "config": {"engine": "neon", "size": "40x40",
                            "levels": 2, "quality_metrics": False}},
                {"name": "cam-b", "frames": 3, "seed": 2, "priority": 2,
                 "config": {"engine": "fpga", "size": "40x40",
                            "levels": 2, "temporal": True,
                            "quality_metrics": False}},
            ],
        }
        spec.update(top)
        path = tmp_path / "streams.json"
        path.write_text(json.dumps(spec))
        return path

    def test_serve_command(self, tmp_path, capsys):
        from repro.cli import main
        path = self._serve_spec(tmp_path)
        assert main(["serve", "--streams", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ServiceReport" in out
        assert "cam-a" in out and "cam-b" in out
        assert "engine occupancy" in out

    def test_serve_json_output(self, tmp_path, capsys):
        from repro.cli import main
        path = self._serve_spec(tmp_path)
        assert main(["serve", "--streams", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frames_total"] == 6
        assert set(payload["streams"]) == {"cam-a", "cam-b"}
        assert payload["pool"]["granted"] == payload["pool"]["released"]
        assert payload["energy_mj_total"] == pytest.approx(
            sum(payload["energy_mj_by_stream"].values()))

    def test_serve_rejects_bad_specs(self, tmp_path, capsys):
        from repro.cli import main
        # unreadable file
        assert main(["serve", "--streams",
                     str(tmp_path / "missing.json")]) == 1
        # no streams
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"pool": {"neon": 1}}))
        assert main(["serve", "--streams", str(empty)]) == 1
        # unknown config key
        bad = self._serve_spec(tmp_path, streams=[
            {"name": "x", "config": {"warp": 9}}])
        assert main(["serve", "--streams", str(bad)]) == 1
        # typo'd stream-level key must not be silently ignored
        typo = self._serve_spec(tmp_path, streams=[
            {"name": "x", "priorty": 4.0,
             "config": {"engine": "neon", "size": "40x40"}}])
        assert main(["serve", "--streams", str(typo)]) == 1
        # stream engine missing from the pool
        unpooled = self._serve_spec(tmp_path, pool={"neon": 1})
        assert main(["serve", "--streams", str(unpooled)]) == 1

    def test_serve_workers_and_export_flags(self, tmp_path, capsys):
        from repro.cli import main
        from repro.serve.ops.metrics import parse_prometheus
        path = self._serve_spec(tmp_path, workers=1)
        metrics = tmp_path / "metrics.prom"
        events = tmp_path / "events.jsonl"
        # an explicit --workers overrides the spec's value
        assert main(["serve", "--streams", str(path), "--workers", "2",
                     "--metrics-out", str(metrics),
                     "--events-out", str(events), "--json"]) == 0
        out = capsys.readouterr()
        payload = json.loads(out.out)
        assert f"wrote metrics to {metrics}" in out.err

        samples = parse_prometheus(metrics.read_text())
        assert samples["repro_serve_aggregate_fps"] == pytest.approx(
            payload["aggregate_fps"])
        assert samples["repro_serve_streams_attached_total"] == 2
        assert samples["repro_serve_active_streams"] == 0

        records = [json.loads(line)
                   for line in events.read_text().splitlines()]
        kinds = {record["kind"] for record in records}
        assert {"attach", "lease", "detach", "service"} <= kinds
        start = next(r for r in records if r["kind"] == "service"
                     and r.get("phase") == "start")
        assert start["workers"] == 2  # the CLI flag won

    def test_serve_workers_defaults_to_spec_value(self, tmp_path,
                                                  capsys):
        from repro.cli import main
        path = self._serve_spec(tmp_path, workers=1)
        events = tmp_path / "events.jsonl"
        assert main(["serve", "--streams", str(path),
                     "--events-out", str(events)]) == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in events.read_text().splitlines()]
        start = next(r for r in records if r["kind"] == "service"
                     and r.get("phase") == "start")
        assert start["workers"] == 1  # the spec's value held

    def test_serve_spec_slo_and_shedding_blocks(self, tmp_path, capsys):
        from repro.cli import main
        path = self._serve_spec(
            tmp_path,
            shedding={"high_watermark": 1.0, "low_watermark": 0.5},
            streams=[
                {"name": "cam-slo", "frames": 3, "seed": 1,
                 "slo": {"target_fps": 5.0,
                         "priority_class": "critical"},
                 "config": {"engine": "neon", "size": "40x40",
                            "levels": 2, "quality_metrics": False}}])
        assert main(["serve", "--streams", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheduler"]["cam-slo"]["priority_class"] \
            == "critical"
        assert payload["shedding"]["policy"]["high_watermark"] == 1.0
        assert payload["ledger"]["balanced"] is True
        # an infeasible SLO fails loudly
        greedy = self._serve_spec(tmp_path, streams=[
            {"name": "greedy", "frames": 2,
             "slo": {"target_fps": 1e9},
             "config": {"engine": "neon", "size": "40x40",
                        "levels": 2, "quality_metrics": False}}])
        assert main(["serve", "--streams", str(greedy)]) == 1

    def test_serve_help_documents_the_ops_flags(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        text = capsys.readouterr().out
        assert "--workers" in text
        assert "--metrics-out" in text
        assert "--events-out" in text
        assert "--shards" in text
        assert "Prometheus" in text

    def test_serve_sharded_flag_and_exports(self, tmp_path, capsys):
        """``--shards 2`` serves the spec through the process-sharded
        tier: same report shape, merged metrics, and the parent event
        log records the shard lifecycle."""
        from repro.cli import main
        from repro.serve.ops.metrics import parse_prometheus
        path = self._serve_spec(tmp_path)
        metrics = tmp_path / "metrics.prom"
        events = tmp_path / "events.jsonl"
        assert main(["serve", "--streams", str(path), "--shards", "2",
                     "--metrics-out", str(metrics),
                     "--events-out", str(events), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frames_total"] == 6
        assert set(payload["streams"]) == {"cam-a", "cam-b"}
        assert payload["admission"]["shards"] == 2
        assert payload["pool"]["granted"] == payload["pool"]["released"]
        assert payload["ledger"]["balanced"] is True

        samples = parse_prometheus(metrics.read_text())
        assert samples["repro_serve_aggregate_fps"] == pytest.approx(
            payload["aggregate_fps"])
        assert samples["repro_serve_live_shards"] == 0  # all drained

        records = [json.loads(line)
                   for line in events.read_text().splitlines()]
        kinds = [record["kind"] for record in records]
        assert kinds.count("shard_start") == 2
        assert kinds.count("shard_exit") == 2

    def test_serve_sharded_spec_key_matches_solo_output(self, tmp_path,
                                                        capsys):
        """The spec's ``"shards"`` key routes to the sharded service,
        and the per-stream energy/frames match the solo run exactly
        (the determinism contract, exercised end to end)."""
        from repro.cli import main
        solo = self._serve_spec(tmp_path)
        assert main(["serve", "--streams", str(solo), "--json"]) == 0
        solo_payload = json.loads(capsys.readouterr().out)

        sharded = self._serve_spec(tmp_path, shards=2)
        assert main(["serve", "--streams", str(sharded), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["admission"]["shards"] == 2
        assert payload["frames_total"] == solo_payload["frames_total"]
        assert payload["energy_mj_by_stream"] \
            == solo_payload["energy_mj_by_stream"]

    def test_seed_makes_runs_reproducible(self, tmp_path):
        from repro.cli import main
        outputs = []
        for attempt in ("a", "b"):
            out = tmp_path / attempt
            assert main(["fuse", "--size", "40x40", "--levels", "2",
                         "--seed", "99", "--output", str(out)]) == 0
            outputs.append((out / "fused.pgm").read_bytes())
        assert outputs[0] == outputs[1]

    def test_seed_changes_the_scene(self, tmp_path):
        from repro.cli import main
        outputs = []
        for seed in ("99", "100"):
            out = tmp_path / seed
            assert main(["fuse", "--size", "40x40", "--levels", "2",
                         "--seed", seed, "--output", str(out)]) == 0
            outputs.append((out / "fused.pgm").read_bytes())
        assert outputs[0] != outputs[1]

    def test_bad_size_argument(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["demo", "--size", "banana"])

    @pytest.mark.parametrize("size", ["0x24", "-4x24", "32x0", "32x-8"])
    def test_non_positive_size_rejected(self, size, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["demo", f"--size={size}"])
        assert "positive" in capsys.readouterr().err

    def test_write_pgm_roundtrip(self, tmp_path, rng):
        from repro.cli import write_pgm
        img = rng.integers(0, 255, (10, 12)).astype(np.uint8)
        path = tmp_path / "x.pgm"
        write_pgm(path, img)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n12 10\n255\n")
        data = np.frombuffer(raw.split(b"\n", 3)[3], dtype=np.uint8)
        assert np.array_equal(data.reshape(10, 12), img)
