"""Sweep runtime, the CLI, and the deprecated system shims."""

import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.session import FusionConfig, FusionSession
from repro.system.fusion_system import (
    ENGINE_NAMES,
    VideoFusionSystem,
    make_engine,
)
from repro.system.runtime import (
    energy_sweep,
    find_crossover,
    format_rows,
    forward_stage_sweep,
    total_time_sweep,
)
from repro.types import PAPER_FRAME_SIZES, FrameShape
from repro.video.scene import SyntheticScene


@pytest.fixture
def small_scene():
    return SyntheticScene(width=96, height=80, seed=3)


class TestDeprecatedVideoFusionSystem:
    """The legacy entry point still works, via the session facade."""

    def test_named_engines(self):
        for name in ("arm", "neon", "fpga"):
            assert make_engine(name).name == name
        assert set(ENGINE_NAMES) == {"arm", "neon", "fpga", "adaptive"}
        with pytest.raises(ConfigurationError):
            make_engine("gpu")

    def test_construction_warns(self, small_scene):
        with pytest.warns(DeprecationWarning, match="FusionSession"):
            VideoFusionSystem(engine="neon", scene=small_scene)

    def test_adaptive_picks_fpga_at_full_frame(self, small_scene):
        with pytest.warns(DeprecationWarning):
            system = VideoFusionSystem(engine="adaptive",
                                       fusion_shape=FrameShape(88, 72),
                                       scene=small_scene)
        assert system.engine.name == "fpga"
        assert system.decision is not None

    def test_adaptive_picks_neon_at_small_frame(self, small_scene):
        with pytest.warns(DeprecationWarning):
            system = VideoFusionSystem(engine="adaptive",
                                       fusion_shape=FrameShape(32, 24),
                                       scene=small_scene)
        assert system.engine.name == "neon"

    def test_run_reports(self, small_scene):
        with pytest.warns(DeprecationWarning):
            system = VideoFusionSystem(engine="neon",
                                       fusion_shape=FrameShape(40, 40),
                                       levels=2, scene=small_scene)
        report = system.run(2)
        assert report.frames == 2
        assert report.engine_used == "neon"
        assert report.model_fps > 0
        assert report.millijoules_per_frame > 0
        assert "qabf" in report.quality

    def test_unknown_engine_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ConfigurationError):
                VideoFusionSystem(engine="abacus")
            # the session-only "online" scheduler was never a legal
            # value for the legacy class; the shim keeps rejecting it
            with pytest.raises(ConfigurationError):
                VideoFusionSystem(engine="online")

    def test_removed_pipeline_attribute_guides(self, small_scene):
        with pytest.warns(DeprecationWarning):
            system = VideoFusionSystem(engine="neon", scene=small_scene)
        with pytest.raises(AttributeError, match="capture_source"):
            system.pipeline

    def test_repeated_runs_do_not_accumulate_records(self, small_scene):
        with pytest.warns(DeprecationWarning):
            system = VideoFusionSystem(engine="neon",
                                       fusion_shape=FrameShape(40, 40),
                                       levels=2, scene=small_scene)
        first = system.run(2)
        second = system.run(2)
        # each report carries exactly its own batch, like the original
        assert len(first.pipeline.records) == 2
        assert len(second.pipeline.records) == 2

    def test_shim_matches_session_exactly(self):
        """The shim is a facade, not a fork: identical numbers."""
        with pytest.warns(DeprecationWarning):
            system = VideoFusionSystem(engine="neon",
                                       fusion_shape=FrameShape(40, 40),
                                       levels=2,
                                       scene=SyntheticScene(width=96,
                                                            height=80,
                                                            seed=9))
        old = system.run(2)
        session = FusionSession(FusionConfig(
            engine="neon", fusion_shape=FrameShape(40, 40), levels=2,
            scene=SyntheticScene(width=96, height=80, seed=9)))
        new = session.run(2)
        assert np.isclose(old.millijoules_per_frame,
                          new.millijoules_per_frame)
        assert np.array_equal(old.pipeline.records[0].frame.pixels,
                              new.records[0].pixels)

    def test_shim_matches_concurrent_executors(self):
        """The legacy path (now routed through the executor layer)
        agrees bitwise with an explicitly concurrent session."""
        with pytest.warns(DeprecationWarning):
            system = VideoFusionSystem(engine="neon",
                                       fusion_shape=FrameShape(40, 40),
                                       levels=2,
                                       scene=SyntheticScene(width=96,
                                                            height=80,
                                                            seed=9))
        old = system.run(2)
        for executor in ("pipeline", "hetero"):
            session = FusionSession(FusionConfig(
                engine="neon", executor=executor,
                fusion_shape=FrameShape(40, 40), levels=2,
                scene=SyntheticScene(width=96, height=80, seed=9)))
            with session:
                new = session.run(2)
            for ref, got in zip(old.pipeline.records, new.records):
                assert np.array_equal(ref.frame.pixels, got.pixels)
                assert ref.model_millijoules == got.model_millijoules


class TestRuntimeSweeps:
    def test_sweep_covers_paper_sizes(self):
        rows = forward_stage_sweep()
        assert [r.shape for r in rows] == list(PAPER_FRAME_SIZES)
        for row in rows:
            assert set(row.values) == {"arm", "neon", "fpga"}

    def test_energy_sweep_units(self):
        rows = energy_sweep(frames=10)
        full = rows[-1]
        assert full.shape == FrameShape(88, 72)
        # hundreds of millijoules for 10 frames (Fig. 10's axis)
        assert 300 < full.values["arm"] < 1500

    def test_find_crossover(self):
        """First paper size where FPGA beats NEON on total time: the
        model places it at 40x40 (the paper's text says 'beyond 40x40';
        its own -48.1 % anchor pulls the model to the window edge)."""
        rows = total_time_sweep()
        crossover = find_crossover(rows, "fpga", "neon")
        assert crossover in (FrameShape(40, 40), FrameShape(64, 48))

    def test_format_rows_renders_every_size(self):
        text = format_rows(forward_stage_sweep(), "s", "Fig 9a")
        for shape in PAPER_FRAME_SIZES:
            assert str(shape) in text
        assert "ARM" in text and "NEON" in text and "FPGA" in text


class TestCli:
    def test_schedule_command(self, capsys):
        from repro.cli import main
        assert main(["schedule", "--size", "32x24"]) == 0
        out = capsys.readouterr().out
        assert "neon" in out and "chosen" in out

    def test_sweep_command(self, capsys):
        from repro.cli import main
        assert main(["sweep", "--table", "fig10"]) == 0
        assert "Fig. 10" in capsys.readouterr().out

    def test_fuse_command_writes_pgms(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "fused"
        assert main(["fuse", "--size", "40x40", "--levels", "2",
                     "--output", str(out)]) == 0
        for name in ("visible.pgm", "thermal.pgm", "fused.pgm"):
            path = out / name
            assert path.exists()
            header = path.read_bytes()[:2]
            assert header == b"P5"

    def test_demo_command(self, capsys):
        from repro.cli import main
        assert main(["demo", "--frames", "1", "--size", "40x40",
                     "--levels", "2", "--engine", "neon"]) == 0
        out = capsys.readouterr().out
        assert "modelled fps" in out

    @pytest.mark.parametrize("executor", ["pipeline", "hetero"])
    def test_demo_executor_flag(self, executor, capsys):
        from repro.cli import main
        assert main(["demo", "--frames", "2", "--size", "40x40",
                     "--levels", "2", "--engine", "neon",
                     "--executor", executor, "--workers", "2",
                     "--queue-depth", "2"]) == 0
        out = capsys.readouterr().out
        assert f"executor         : {executor}" in out
        assert "wall-clock fps" in out

    def test_demo_json_output(self, capsys):
        import json
        from repro.cli import main
        assert main(["demo", "--frames", "2", "--size", "40x40",
                     "--levels", "2", "--engine", "neon", "--seed", "7",
                     "--executor", "pipeline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frames"] == 2
        assert payload["engine_used"] == "neon"
        assert payload["throughput"]["executor"] == "pipeline"
        assert payload["throughput"]["wall_fps"] > 0

    def test_fuse_json_output(self, tmp_path, capsys):
        import json
        from repro.cli import main
        out = tmp_path / "fused"
        assert main(["fuse", "--size", "40x40", "--levels", "2",
                     "--output", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["frames"] == 1
        assert (out / "fused.pgm").exists()

    def test_demo_online_engine(self, capsys):
        from repro.cli import main
        assert main(["demo", "--frames", "3", "--size", "32x24",
                     "--levels", "2", "--engine", "online"]) == 0
        assert "engine used" in capsys.readouterr().out

    def test_seed_makes_runs_reproducible(self, tmp_path):
        from repro.cli import main
        outputs = []
        for attempt in ("a", "b"):
            out = tmp_path / attempt
            assert main(["fuse", "--size", "40x40", "--levels", "2",
                         "--seed", "99", "--output", str(out)]) == 0
            outputs.append((out / "fused.pgm").read_bytes())
        assert outputs[0] == outputs[1]

    def test_seed_changes_the_scene(self, tmp_path):
        from repro.cli import main
        outputs = []
        for seed in ("99", "100"):
            out = tmp_path / seed
            assert main(["fuse", "--size", "40x40", "--levels", "2",
                         "--seed", seed, "--output", str(out)]) == 0
            outputs.append((out / "fused.pgm").read_bytes())
        assert outputs[0] != outputs[1]

    def test_bad_size_argument(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["demo", "--size", "banana"])

    @pytest.mark.parametrize("size", ["0x24", "-4x24", "32x0", "32x-8"])
    def test_non_positive_size_rejected(self, size, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["demo", f"--size={size}"])
        assert "positive" in capsys.readouterr().err

    def test_write_pgm_roundtrip(self, tmp_path, rng):
        from repro.cli import write_pgm
        img = rng.integers(0, 255, (10, 12)).astype(np.uint8)
        path = tmp_path / "x.pgm"
        write_pgm(path, img)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n12 10\n255\n")
        data = np.frombuffer(raw.split(b"\n", 3)[3], dtype=np.uint8)
        assert np.array_equal(data.reshape(10, 12), img)
