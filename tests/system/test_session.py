"""The unified session API: config validation, streaming, sources."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FusionError, VideoError
from repro.hw.registry import create_engine, engine_names, register_engine
from repro.session import (
    ArrayGroupSource,
    ArraySource,
    CameraPairSource,
    CaptureChainSource,
    FrameGroup,
    FramePair,
    FusionConfig,
    FusionSession,
    SyntheticSource,
    as_frame_source,
)
from repro.types import FrameShape
from repro.video.scene import SyntheticScene

SMALL = FrameShape(40, 40)


def small_config(**overrides):
    defaults = dict(engine="neon", fusion_shape=SMALL, levels=2,
                    scene=SyntheticScene(width=96, height=80, seed=5))
    defaults.update(overrides)
    return FusionConfig(**defaults)


class TestEngineRegistry:
    def test_names_and_creation(self):
        assert set(engine_names()) >= {"arm", "neon", "fpga"}
        for name in ("arm", "neon", "fpga"):
            assert create_engine(name).name == name

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            create_engine("abacus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_engine("arm", lambda: None)


class TestFusionConfig:
    def test_defaults_are_valid(self):
        config = FusionConfig()
        assert config.engine == "adaptive"
        assert config.fusion_shape == FrameShape(88, 72)

    def test_tuple_shape_coerced(self):
        config = FusionConfig(fusion_shape=(40, 32))
        assert config.fusion_shape == FrameShape(40, 32)

    @pytest.mark.parametrize("bad", [
        dict(engine="abacus"),
        dict(levels=0),
        dict(fusion_rule="median"),
        dict(objective="joules"),
        dict(target_fps=0.0),
        dict(energy_budget_mj=-1.0),
        dict(probe_frames=0),
        dict(reprobe_every=1),
        dict(fusion_shape="88x72"),
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            FusionConfig(**bad)

    def test_with_overrides_validates(self):
        config = FusionConfig().with_overrides(engine="fpga", levels=2)
        assert config.engine == "fpga"
        with pytest.raises(ConfigurationError):
            FusionConfig().with_overrides(engines="fpga")
        with pytest.raises(ConfigurationError):
            FusionConfig().with_overrides(levels=0)

    def test_seed_controls_default_scene(self):
        assert FusionConfig(seed=7).make_scene().seed == 7


class TestFusionSession:
    def test_run_reports(self):
        report = FusionSession(small_config()).run(2)
        assert report.frames == 2
        assert report.engine_used == "neon"
        assert report.model_fps > 0
        assert report.millijoules_per_frame > 0
        assert "qabf" in report.quality

    def test_kwarg_construction(self):
        session = FusionSession(engine="arm", fusion_shape=SMALL, levels=2)
        assert session.engine.name == "arm"

    def test_adaptive_decision_at_init(self):
        full = FusionSession(FusionConfig(engine="adaptive"))
        assert full.engine.name == "fpga"
        assert full.decision is not None
        small = FusionSession(FusionConfig(engine="adaptive",
                                           fusion_shape=(32, 24)))
        assert small.engine.name == "neon"

    def test_online_explores_then_exploits(self):
        report = FusionSession(small_config(engine="online")).run(8)
        assert set(report.engine_usage) == {"arm", "neon", "fpga"}
        assert max(report.engine_usage.values()) >= 5

    def test_process_single_pair(self, structured_pair):
        visible, thermal = structured_pair
        session = FusionSession(small_config())
        result = session.process(visible, thermal)
        assert result.pixels.shape == SMALL.array_shape
        assert result.engine == "neon"
        assert result.model_seconds > 0
        assert session.frames_processed == 1

    def test_process_rejects_color_frames(self):
        session = FusionSession(small_config())
        rgb = np.zeros((40, 40, 3))
        with pytest.raises(ConfigurationError):
            session.process(rgb, rgb)

    def test_run_validates_count(self):
        with pytest.raises(ConfigurationError):
            FusionSession(small_config()).run(0)

    def test_stream_validates_limit(self):
        session = FusionSession(small_config())
        with pytest.raises(ConfigurationError):
            list(session.stream(SyntheticSource(seed=1), limit=0))

    def test_streaming_does_not_retain_records(self):
        """stream() hands results to the consumer; only run() batches
        retain them, so infinite streams stay bounded in memory."""
        session = FusionSession(small_config())
        streamed = list(session.stream(SyntheticSource(seed=1), limit=2))
        assert len(streamed) == 2
        assert session.report().records == []
        assert session.report().frames == 2
        assert "qabf" in session.report().quality  # aggregates still kept
        assert "qabf" in streamed[0].quality       # per-frame on the result
        batch = session.run(2)
        assert len(batch.records) == 2

    def test_run_reports_stats_of_the_source_it_used(self):
        """Transport health comes from whichever source fed the run,
        not from the built-in capture chain."""
        session = FusionSession(small_config())
        custom = CaptureChainSource(scene=SyntheticScene(width=96,
                                                         height=80, seed=7))
        report = session.run(2, source=custom)
        assert report.fifo_dropped == custom.fifo_dropped
        assert report.decode_errors == custom.decode_errors
        # a source with no transport counters contributes none
        synthetic = FusionSession(small_config()).run(
            2, source=SyntheticSource(seed=7))
        assert synthetic.fifo_dropped == 0
        assert synthetic.decode_errors == 0

    def test_report_accumulates_across_runs(self):
        session = FusionSession(small_config())
        first = session.run(2)
        second = session.run(3)
        assert first.frames == 2 and second.frames == 3
        assert session.report().frames == 5

    def test_full_feature_stack_runs(self):
        config = small_config(engine="online", fusion_shape=FrameShape(48, 40),
                              registration=True, temporal=True, monitor=True,
                              energy_budget_mj=5000.0)
        session = FusionSession(config)
        report = session.run(5)
        assert report.frames == 5
        assert sum(report.actions.values()) == 5
        assert report.telemetry["frames"] == 5
        assert 0.0 <= report.mean_qabf <= 1.0
        assert report.registered_shift_px < 1.0  # aligned rig
        assert session.telemetry.frames_remaining() is not None


class TestStreamRunEquivalence:
    def test_stream_matches_run_on_fixed_seed(self):
        """run(n) is exactly stream(capture chain, n) — same frames,
        same modelled costs — when the scene seed matches."""
        batch = FusionSession(small_config(scene=None, seed=11))
        batch_report = batch.run(3)

        streamed = FusionSession(small_config(scene=None, seed=11))
        source = CaptureChainSource(scene=SyntheticScene(seed=11))
        results = list(streamed.stream(source, limit=3))

        assert len(results) == batch_report.frames == 3
        for result, record in zip(results, batch_report.records):
            assert np.array_equal(result.pixels, record.pixels)
        assert np.isclose(
            sum(r.model_millijoules for r in results),
            batch_report.model_millijoules_total,
        )

    def test_deterministic_given_seed(self):
        def totals():
            report = FusionSession(small_config(engine="online")).run(4)
            return report.engine_usage, report.model_millijoules_total

        first, second = totals(), totals()
        assert first[0] == second[0]
        assert np.isclose(first[1], second[1])


class TestFrameSources:
    def test_synthetic_source_limit_and_timestamps(self):
        pairs = list(SyntheticSource(seed=3, fps=10.0, limit=3))
        assert len(pairs) == 3
        assert pairs[1].timestamp_s == pytest.approx(0.1)
        assert pairs[0].visible.shape == pairs[0].thermal.shape

    def test_array_source_replays_and_loops(self):
        vis = [np.full((8, 8), float(i)) for i in range(2)]
        th = [np.full((8, 8), 10.0 + i) for i in range(2)]
        assert len(list(ArraySource(vis, th))) == 2
        looped = ArraySource(vis, th, loop=True)
        taken = [pair for pair, _ in zip(looped, range(5))]
        assert len(taken) == 5
        assert np.array_equal(taken[4].visible, vis[0])

    def test_array_source_validation(self):
        good = [np.zeros((8, 8))]
        with pytest.raises(VideoError):
            ArraySource([], [])
        with pytest.raises(FusionError, match="counts differ"):
            ArraySource(good, good * 2)
        with pytest.raises(VideoError):
            ArraySource([np.zeros((8, 8, 3))], good)
        with pytest.raises(FusionError, match="pair 0 mismatched"):
            ArraySource([np.zeros((8, 8))], [np.zeros((8, 10))])

    def test_array_source_rejects_empty_visible_side(self):
        """An empty visible recording must hit the emptiness guard,
        not fall through to the count-mismatch complaint."""
        with pytest.raises(VideoError, match="at least one frame pair"):
            ArraySource([], [np.zeros((8, 8))])

    def test_array_source_rejects_empty_thermal_side(self):
        with pytest.raises(VideoError, match="at least one frame pair"):
            ArraySource([np.zeros((8, 8))], [])

    def test_close_is_idempotent_across_all_sources(self):
        """The streaming layer may close a source more than once
        (stream teardown + context manager); every built-in source
        must tolerate it."""
        vis = [np.zeros((8, 8))]
        sources = [
            SyntheticSource(seed=3, limit=1),
            ArraySource(vis, vis),
            CameraPairSource(seed=3, limit=1),
            CaptureChainSource(seed=3),
        ]
        for source in sources:
            next(iter(source))
            source.close()
            source.close()  # second close must be a no-op, not an error

    def test_camera_pair_source_native_geometries(self):
        scene = SyntheticScene(width=96, height=80, seed=5)
        pair = next(iter(CameraPairSource(scene=scene, limit=1)))
        assert pair.visible.shape == (80, 96)   # webcam at scene size
        assert pair.thermal.shape == (288, 384)  # microbolometer native

    def test_capture_chain_source_stats(self):
        source = CaptureChainSource(scene=SyntheticScene(width=96, height=80,
                                                         seed=5))
        pairs = [pair for pair, _ in zip(source, range(2))]
        assert pairs[0].visible.shape == (80, 96)
        assert pairs[0].thermal.shape == (480, 640)
        assert source.fifo_dropped >= 0 and source.decode_errors >= 0

    def test_plain_iterables_are_coerced(self):
        pairs = [(np.zeros((8, 8)), np.ones((8, 8)))] * 2
        source = as_frame_source(iter(pairs))
        out = list(source)
        assert len(out) == 2 and isinstance(out[0], FramePair)
        with pytest.raises(VideoError):
            as_frame_source(42)

    def test_duck_typed_sources_accepted(self):
        class Pairs:  # not a FrameSource subclass, but walks like one
            def frames(self):
                yield FramePair(np.zeros((8, 8)), np.ones((8, 8)))

        assert len(list(as_frame_source(Pairs()))) == 1

    def test_single_camera_source_gets_a_guided_error(self):
        from repro.video import WebcamSimulator
        camera = WebcamSimulator(SyntheticScene(width=96, height=80, seed=1))
        with pytest.raises(VideoError, match="CameraPairSource"):
            as_frame_source(camera)

    def test_run_warns_when_finite_source_exhausts(self):
        vis = [np.zeros((8, 8))] * 2
        th = [np.ones((8, 8))] * 2
        session = FusionSession(small_config())
        with pytest.warns(RuntimeWarning, match="2 of the 10"):
            report = session.run(10, source=ArraySource(vis, th))
        assert report.frames == 2  # the report tells the truth

    def test_session_streams_every_source_kind(self, structured_pair):
        """The acceptance matrix: synthetic, arrays, camera sims."""
        visible, thermal = structured_pair
        sources = (
            SyntheticSource(seed=2),
            ArraySource([visible] * 2, [thermal] * 2),
            CameraPairSource(scene=SyntheticScene(width=96, height=80,
                                                  seed=2)),
        )
        for source in sources:
            session = FusionSession(small_config())
            results = list(session.stream(source, limit=2))
            assert len(results) == 2
            for result in results:
                assert result.pixels.shape == SMALL.array_shape
                assert result.pixels.dtype == np.uint8


class TestFrameGroups:
    """The N-way source protocol: FrameGroup, its pair alias, and the
    group-replaying sources."""

    def test_frame_group_basics(self):
        frames = tuple(np.full((8, 8), float(i)) for i in range(3))
        group = FrameGroup(frames=frames, timestamp_s=0.5, index=2)
        assert len(group) == 3
        assert np.array_equal(group.visible, frames[0])
        assert np.array_equal(group.thermal, frames[1])
        assert group.timestamp_s == 0.5 and group.index == 2

    def test_frame_group_needs_two_sources(self):
        with pytest.raises(FusionError, match=">= 2"):
            FrameGroup(frames=(np.zeros((8, 8)),))

    def test_frame_pair_is_a_two_source_group(self):
        pair = FramePair(np.zeros((8, 8)), np.ones((8, 8)))
        assert isinstance(pair, FrameGroup)
        assert len(pair) == 2
        assert pair.frames[0] is pair.visible
        assert pair.frames[1] is pair.thermal

    def test_synthetic_source_modalities(self):
        triples = list(SyntheticSource(
            seed=3, limit=2,
            modalities=("visible", "thermal", "depth")))
        assert len(triples) == 2
        assert all(len(group) == 3 for group in triples)
        # the first two modalities are the exact frames the default
        # pair stream renders — adding a modality must not perturb the
        # existing sequence
        pairs = list(SyntheticSource(seed=3, limit=2))
        for pair, triple in zip(pairs, triples):
            assert np.array_equal(pair.visible, triple.frames[0])
            assert np.array_equal(pair.thermal, triple.frames[1])

    def test_unknown_modality_rejected(self):
        with pytest.raises(VideoError, match="depth"):
            list(SyntheticSource(seed=1, limit=1,
                                 modalities=("visible", "sonar")))

    def test_array_group_source_replays_and_loops(self):
        streams = [[np.full((8, 8), float(10 * s + i)) for i in range(2)]
                   for s in range(3)]
        groups = list(ArrayGroupSource(*streams))
        assert len(groups) == 2
        assert all(len(g) == 3 for g in groups)
        assert np.array_equal(groups[1].frames[2], streams[2][1])
        looped = ArrayGroupSource(*streams, loop=True)
        taken = [g for g, _ in zip(looped, range(5))]
        assert np.array_equal(taken[4].frames[0], streams[0][0])

    def test_array_group_source_validation(self):
        good = [np.zeros((8, 8))]
        with pytest.raises(VideoError, match=">= 2 streams"):
            ArrayGroupSource(good)
        with pytest.raises(VideoError, match="at least one"):
            ArrayGroupSource(good, [], good)
        with pytest.raises(FusionError, match="counts differ"):
            ArrayGroupSource(good, good * 2, good)
        with pytest.raises(VideoError, match="2-D"):
            ArrayGroupSource(good, good, [np.zeros((8, 8, 3))])
        with pytest.raises(FusionError, match="group 0 mismatched"):
            ArrayGroupSource(good, good, [np.zeros((8, 10))])

    def test_three_source_session_stream(self):
        config = small_config(n_sources=3)
        source = SyntheticSource(
            seed=5, modalities=("visible", "thermal", "depth"))
        with FusionSession(config) as session:
            results = list(session.stream(source, limit=2))
        assert len(results) == 2
        for result in results:
            assert len(result.sources) == 3
            assert result.pixels.shape == SMALL.array_shape

    def test_source_width_must_match_plan(self):
        with FusionSession(small_config(n_sources=3)) as session:
            with pytest.raises(FusionError, match="fuses 3 sources"):
                list(session.stream(SyntheticSource(seed=1), limit=1))
        with FusionSession(small_config()) as session:
            source = SyntheticSource(
                seed=1, modalities=("visible", "thermal", "depth"))
            with pytest.raises(FusionError, match="fuses 2 sources"):
                list(session.stream(source, limit=1))

    def test_process_accepts_n_frames(self):
        rng = np.random.default_rng(9)
        frames = [rng.uniform(0, 255, SMALL.array_shape)
                  for _ in range(3)]
        with FusionSession(small_config(n_sources=3)) as session:
            result = session.process(*frames)
        assert result.pixels.shape == SMALL.array_shape
        assert len(result.sources) == 3

    def test_config_rejects_bad_n_sources(self):
        with pytest.raises(ConfigurationError):
            FusionConfig(n_sources=1)
        with pytest.raises(ConfigurationError):
            FusionConfig(n_sources=3, temporal=True)
