"""Deprecated advanced-session shim and SVG figure generation.

The behaviour the old ``AdvancedFusionSession`` provided (online
scheduling, registration, temporal fusion, monitoring, telemetry) is
tested against the new API in ``test_session.py``; here we only verify
the shim still exposes it faithfully.
"""

import pytest

from repro.errors import ConfigurationError
from repro.figures import FIGURES, generate_figures, render_chart
from repro.system.advanced import AdvancedFusionSession
from repro.system.runtime import forward_stage_sweep
from repro.types import FrameShape
from repro.video.scene import SyntheticScene


@pytest.fixture
def small_session():
    with pytest.warns(DeprecationWarning, match="FusionSession"):
        return AdvancedFusionSession(
            fusion_shape=FrameShape(48, 40), levels=2,
            scene=SyntheticScene(width=96, height=80, seed=5),
            energy_budget_mj=5000,
        )


class TestDeprecatedAdvancedSession:
    def test_run_produces_report(self, small_session):
        report = small_session.run(5)
        assert report.frames == 5
        assert sum(report.engine_usage.values()) == 5
        assert sum(report.actions.values()) == 5
        assert 0.0 <= report.mean_qabf <= 1.0
        assert report.telemetry["frames"] == 5

    def test_explores_then_exploits(self, small_session):
        report = small_session.run(8)
        # all engines probed at least once
        assert set(report.engine_usage) == {"arm", "neon", "fpga"}
        # the winner gets the majority of frames
        assert max(report.engine_usage.values()) >= 5

    def test_aligned_rig_applies_no_shift(self, small_session):
        report = small_session.run(4)
        assert report.registered_shift_px < 1.0

    def test_features_can_be_disabled(self):
        with pytest.warns(DeprecationWarning):
            session = AdvancedFusionSession(
                fusion_shape=FrameShape(48, 40), levels=2,
                scene=SyntheticScene(width=96, height=80, seed=5),
                use_registration=False, use_temporal=False,
                use_monitor=False,
            )
        report = session.run(3)
        assert report.alarms == 0
        assert report.mean_qabf == 0.0  # monitor off
        assert report.registered_shift_px == 0.0

    def test_telemetry_energy_budget(self, small_session):
        small_session.run(4)
        remaining = small_session.telemetry.frames_remaining()
        assert remaining is not None and remaining > 0

    def test_validation(self, small_session):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                AdvancedFusionSession(levels=0)
        with pytest.raises(ConfigurationError):
            small_session.run(0)


class TestFigures:
    def test_chart_is_valid_svg(self):
        svg = render_chart(forward_stage_sweep(), "test chart")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        for name in ("ARM", "NEON", "FPGA"):
            assert name in svg
        assert "polyline" in svg

    def test_generate_all_figures(self, tmp_path):
        paths = generate_figures(tmp_path)
        assert len(paths) == len(FIGURES)
        for path in paths:
            assert path.exists()
            assert path.read_text().startswith("<svg")

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            generate_figures(tmp_path, names=("fig99",))

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            render_chart([], "empty")

    def test_cli_figures_command(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["figures", "--output", str(tmp_path / "figs")]) == 0
        assert (tmp_path / "figs" / "fig9a.svg").exists()
