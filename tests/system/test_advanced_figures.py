"""Deprecated advanced-session stub and SVG figure generation.

The behaviour the old ``AdvancedFusionSession`` provided (online
scheduling, registration, temporal fusion, monitoring, telemetry) is
tested against the unified API in ``test_session.py``; the class body
itself is gone.  Here we only verify the re-export stub: touching the
legacy names warns and hands back the session-layer equivalents.
"""

import pytest

from repro.errors import ConfigurationError
from repro.figures import FIGURES, generate_figures, render_chart
from repro.session import FusionConfig, FusionReport, FusionSession
from repro.system.runtime import forward_stage_sweep
from repro.types import FrameShape
from repro.video.scene import SyntheticScene


class TestDeprecatedAdvancedStub:
    def test_names_warn_and_resolve_to_session_api(self):
        import repro.system.advanced as legacy
        with pytest.warns(DeprecationWarning, match="FusionSession"):
            assert legacy.AdvancedFusionSession is FusionSession
        with pytest.warns(DeprecationWarning, match="FusionSession"):
            assert legacy.SessionReport is FusionReport

    def test_package_and_top_level_reexports(self):
        import repro
        import repro.system as system
        with pytest.warns(DeprecationWarning):
            assert system.AdvancedFusionSession is FusionSession
        with pytest.warns(DeprecationWarning):
            assert repro.AdvancedFusionSession is FusionSession

    def test_unknown_attribute_still_raises(self):
        import repro.system.advanced as legacy
        with pytest.raises(AttributeError):
            legacy.does_not_exist

    def test_resolved_class_runs_the_advanced_featureset(self):
        """What the old class assembled is one config away."""
        import repro.system.advanced as legacy
        with pytest.warns(DeprecationWarning):
            cls = legacy.AdvancedFusionSession
        with cls(FusionConfig(
                engine="online", fusion_shape=FrameShape(48, 40), levels=2,
                scene=SyntheticScene(width=96, height=80, seed=5),
                registration=True, temporal=True, monitor=True,
                quality_metrics=False, keep_records=False)) as session:
            report = session.run(5)
        assert report.frames == 5
        assert sum(report.engine_usage.values()) == 5
        assert report.registered_shift_px < 1.0
        with pytest.raises(ConfigurationError):
            session.run(0)


class TestFigures:
    def test_chart_is_valid_svg(self):
        svg = render_chart(forward_stage_sweep(), "test chart")
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        for name in ("ARM", "NEON", "FPGA"):
            assert name in svg
        assert "polyline" in svg

    def test_generate_all_figures(self, tmp_path):
        paths = generate_figures(tmp_path)
        assert len(paths) == len(FIGURES)
        for path in paths:
            assert path.exists()
            assert path.read_text().startswith("<svg")

    def test_unknown_figure_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            generate_figures(tmp_path, names=("fig99",))

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            render_chart([], "empty")

    def test_cli_figures_command(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["figures", "--output", str(tmp_path / "figs")]) == 0
        assert (tmp_path / "figs" / "fig9a.svg").exists()
