"""I/O formats and runtime telemetry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, VideoError
from repro.io import (
    colorize_fusion,
    read_float_raw,
    read_pgm,
    read_ppm,
    write_float_raw,
    write_pgm,
    write_ppm,
)
from repro.system.telemetry import FrameTelemetry


class TestPgm:
    def test_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 255, (24, 30)).astype(np.uint8)
        path = tmp_path / "frame.pgm"
        write_pgm(path, img)
        assert np.array_equal(read_pgm(path), img)

    def test_float_input_clipped(self, tmp_path):
        path = tmp_path / "clip.pgm"
        write_pgm(path, np.array([[-10.0, 300.0]]))
        out = read_pgm(path)
        assert out[0, 0] == 0 and out[0, 1] == 255

    def test_rejects_3d(self, tmp_path):
        with pytest.raises(VideoError):
            write_pgm(tmp_path / "bad.pgm", np.zeros((4, 4, 3)))

    def test_read_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n2 2\n255\n" + bytes(12))
        with pytest.raises(VideoError):
            read_pgm(path)

    def test_read_handles_comments(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 2\n255\n" + bytes([1, 2, 3, 4]))
        assert read_pgm(path).tolist() == [[1, 2], [3, 4]]

    def test_truncated_data_rejected(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P5\n4 4\n255\n" + bytes(3))
        with pytest.raises(VideoError):
            read_pgm(path)


class TestPpmAndRaw:
    def test_ppm_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 255, (8, 10, 3)).astype(np.uint8)
        path = tmp_path / "c.ppm"
        write_ppm(path, img)
        assert np.array_equal(read_ppm(path), img)

    def test_ppm_needs_three_channels(self, tmp_path):
        with pytest.raises(VideoError):
            write_ppm(tmp_path / "bad.ppm", np.zeros((4, 4)))

    def test_raw_roundtrip_any_rank(self, tmp_path, rng):
        for shape in ((5,), (3, 4), (2, 3, 4)):
            arr = rng.standard_normal(shape).astype(np.float32)
            path = tmp_path / "a.rpf"
            write_float_raw(path, arr)
            back = read_float_raw(path)
            assert back.shape == shape
            assert np.allclose(back, arr)

    def test_raw_bad_magic(self, tmp_path):
        path = tmp_path / "x.rpf"
        path.write_bytes(b"NOPE" + bytes(16))
        with pytest.raises(VideoError):
            read_float_raw(path)


class TestColorize:
    def test_output_shape_and_type(self):
        out = colorize_fusion(np.full((6, 6), 100.0),
                              np.linspace(0, 255, 36).reshape(6, 6))
        assert out.shape == (6, 6, 3)
        assert out.dtype == np.uint8

    def test_hot_regions_turn_red(self):
        luma = np.full((4, 4), 100.0)
        heat = np.zeros((4, 4))
        heat[0, 0] = 255.0
        out = colorize_fusion(luma, heat)
        assert out[0, 0, 0] > out[0, 0, 2]          # red over blue when hot
        assert out[3, 3, 0] == out[3, 3, 2] == 100  # neutral when cold

    def test_alpha_zero_is_grayscale(self, rng):
        luma = rng.uniform(0, 255, (5, 5))
        out = colorize_fusion(luma, rng.uniform(0, 255, (5, 5)), alpha=0.0)
        assert np.array_equal(out[..., 0], out[..., 1])
        assert np.array_equal(out[..., 1], out[..., 2])

    def test_validation(self):
        with pytest.raises(VideoError):
            colorize_fusion(np.zeros((4, 4)), np.zeros((5, 5)))
        with pytest.raises(VideoError):
            colorize_fusion(np.zeros((4, 4)), np.zeros((4, 4)), alpha=2.0)


class TestTelemetry:
    def test_summary_statistics(self):
        telemetry = FrameTelemetry(target_fps=25.0)
        for seconds in (0.02, 0.03, 0.04, 0.05, 0.06):
            telemetry.record(seconds, millijoules=10.0)
        summary = telemetry.summary()
        assert summary.frames == 5
        assert np.isclose(summary.latency_mean_s, 0.04)
        assert np.isclose(summary.latency_p50_s, 0.04)
        assert summary.latency_max_s == 0.06
        assert summary.deadline_misses == 2  # 0.05 and 0.06 > 40 ms
        assert np.isclose(summary.millijoules_total, 50.0)

    def test_fps(self):
        telemetry = FrameTelemetry()
        telemetry.record(0.1)
        telemetry.record(0.1)
        assert np.isclose(telemetry.summary().fps, 10.0)

    def test_energy_budget_extrapolation(self):
        telemetry = FrameTelemetry(energy_budget_mj=100.0)
        telemetry.record(0.05, millijoules=10.0)
        assert telemetry.frames_remaining() == 9
        for _ in range(9):
            telemetry.record(0.05, millijoules=10.0)
        assert telemetry.frames_remaining() == 0

    def test_no_budget_returns_none(self):
        telemetry = FrameTelemetry()
        telemetry.record(0.05, 1.0)
        assert telemetry.frames_remaining() is None

    def test_empty_summary_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameTelemetry().summary()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrameTelemetry(target_fps=0)
        with pytest.raises(ConfigurationError):
            FrameTelemetry(energy_budget_mj=-5)
        telemetry = FrameTelemetry()
        with pytest.raises(ConfigurationError):
            telemetry.record(-1.0)

    def test_percentile_interpolates(self):
        telemetry = FrameTelemetry()
        telemetry.record(0.01)
        telemetry.record(0.03)
        summary = telemetry.summary()
        assert 0.01 < summary.latency_p50_s < 0.03
