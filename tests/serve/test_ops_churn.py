"""Live churn: runtime attach/detach, fault isolation, overload
shedding, and the ServiceReport JSON contract."""

import json
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, FusionError, VideoError
from repro.serve import FusionService, ShedPolicy, StreamSLO
from repro.serve.ops.shedding import Shedder
from repro.session import (
    FramePair,
    FrameSource,
    FusionConfig,
    FusionSession,
    SyntheticSource,
)
from repro.types import FrameShape
from repro.video.faults import DropoutChannel

TINY = FrameShape(32, 24)


def config(**overrides):
    defaults = dict(engine="neon", fusion_shape=TINY, levels=2, seed=5,
                    quality_metrics=False)
    defaults.update(overrides)
    return FusionConfig(**defaults)


def solo_results(overrides, seed, frames):
    with FusionSession(config(**overrides)) as session:
        return list(session.stream(SyntheticSource(seed=seed),
                                   limit=frames))


class LossyCableSource(FrameSource):
    """Synthetic pairs whose visible plane rides a byte channel from
    :mod:`repro.video.faults` that starts dropping bursts mid-stream
    (a connector coming loose at ``fail_at``): the source notices the
    short read and raises :class:`VideoError`, deterministically."""

    def __init__(self, fail_at=2, n=50, shape=(24, 32)):
        self.channel = DropoutChannel(dropout_rate=0.9, burst_bytes=64,
                                      seed=7)
        self.fail_at = fail_at
        self.n = n
        self.shape = shape
        self.closed = False

    def frames(self):
        for i in range(self.n):
            visible = np.full(self.shape, 10.0 + i)
            if i >= self.fail_at:
                data = visible.tobytes()
                received = self.channel.transmit(data)
                if len(received) != len(data):
                    stats = self.channel.stats
                    raise VideoError(
                        f"frame {i}: channel dropped "
                        f"{stats.bytes_dropped} byte(s) over "
                        f"{stats.bursts} burst(s)")
                visible = np.frombuffer(
                    received, dtype=visible.dtype).reshape(self.shape)
            yield FramePair(visible=visible,
                            thermal=np.full(self.shape, 200.0 - i),
                            timestamp_s=i / 25.0, index=i)

    def close(self):
        self.closed = True


# ----------------------------------------------------------------------
class TestLiveChurn:
    def test_attach_detach_leaves_tenants_undisturbed(
            self, assert_bitwise_parity):
        """A guest attaching and detaching mid-run never perturbs the
        steady tenant's output bits."""
        service = FusionService(pool={"neon": 1, "arm": 1}, live=True)
        service.add_stream("steady", config=config(),
                           source=SyntheticSource(seed=3), frames=8)
        service.start()
        # endless guest on the other engine: attach mid-run, then
        # detach — the steady stream must not notice
        service.attach("guest", config=config(engine="arm"),
                       source=SyntheticSource(seed=4))
        time.sleep(0.05)
        guest_report = service.detach("guest", timeout=30.0)
        report = service.wait()
        assert guest_report is report.streams["guest"]
        assert report.scheduler["guest"]["outcome"] == "detached"
        assert report.scheduler["steady"]["outcome"] == "completed"
        assert_bitwise_parity(solo_results({}, 3, 8),
                              report.streams["steady"].records,
                              label="steady")
        assert report.ledger["balanced"]
        assert report.pool["granted"] == report.pool["released"]

    def test_detach_of_finished_stream_returns_its_report(self):
        service = FusionService(pool={"neon": 1}, live=True)
        service.attach("short", config=config(),
                       source=SyntheticSource(seed=1), frames=2)
        service.start()
        # let the stream run to completion and auto-retire
        deadline = time.monotonic() + 30.0
        while service.stream_names():
            assert time.monotonic() < deadline
            time.sleep(0.005)
        report = service.detach("short")
        assert report.frames == 2
        # idempotent: the parked report comes back again
        assert service.detach("short") is report
        service.close()

    def test_name_reusable_after_retirement(self):
        service = FusionService(pool={"neon": 1}, live=True)
        service.start()

        def run_to_retirement(seed, frames):
            service.attach("cam", config=config(),
                           source=SyntheticSource(seed=seed),
                           frames=frames)
            deadline = time.monotonic() + 30.0
            while service.stream_names():
                assert time.monotonic() < deadline
                time.sleep(0.005)

        run_to_retirement(seed=1, frames=2)
        run_to_retirement(seed=2, frames=3)
        report = service.wait()
        # the second incarnation's report is the one retained
        assert report.streams["cam"].frames == 3
        assert report.ledger["balanced"]

    def test_duplicate_active_name_rejected(self):
        service = FusionService(pool={"neon": 1}, live=True)
        service.attach("cam", config=config(),
                       source=SyntheticSource(seed=1), frames=2)
        with pytest.raises(ConfigurationError, match="duplicate"):
            service.attach("cam", config=config(),
                           source=SyntheticSource(seed=2), frames=2)
        service.close()

    def test_reap_hands_back_reports_once(self):
        service = FusionService(pool={"neon": 1}, live=True)
        service.start()
        service.attach("cam", config=config(),
                       source=SyntheticSource(seed=1), frames=2)
        deadline = time.monotonic() + 30.0
        reports = {}
        while "cam" not in reports:
            reports.update(service.reap())
            assert time.monotonic() < deadline
            time.sleep(0.005)
        assert reports["cam"].frames == 2
        assert service.reap() == {}
        # reaped per-stream state is gone from the ledger map too
        assert "cam" not in service.ledger()["streams"]
        service.close()

    def test_attach_to_non_live_running_service_rejected(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("a", config=config(),
                           source=SyntheticSource(seed=1), frames=2)
        service.start()
        with pytest.raises(ConfigurationError, match="live=True"):
            service.add_stream("b", config=config(),
                               source=SyntheticSource(seed=2), frames=2)
        service.wait()

    def test_detach_requires_live_service(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("a", config=config(),
                           source=SyntheticSource(seed=1), frames=2)
        service.start()
        with pytest.raises(ConfigurationError, match="live"):
            service.detach("a")
        service.wait()

    def test_detach_unknown_stream_rejected(self):
        service = FusionService(pool={"neon": 1}, live=True)
        with pytest.raises(ConfigurationError, match="no stream"):
            service.detach("ghost")
        service.close()

    def test_attach_while_draining_rejected(self):
        service = FusionService(pool={"neon": 1}, live=True)
        service.start()
        service.wait()
        with pytest.raises(FusionError, match="closed"):
            service.attach("late", config=config(),
                           source=SyntheticSource(seed=1), frames=2)


# ----------------------------------------------------------------------
class TestFaultIsolation:
    """Satellite: a fault-injected source under churn — the faulting
    stream detaches cleanly, its leases are released, the error shows
    in the ServiceReport, and healthy tenants never notice."""

    def test_faulty_stream_is_isolated_from_healthy_tenants(
            self, assert_bitwise_parity):
        faulty_source = LossyCableSource(fail_at=2)
        service = FusionService(pool={"neon": 1, "arm": 1}, live=True)
        service.add_stream("healthy", config=config(),
                           source=SyntheticSource(seed=3), frames=6)
        service.add_stream("faulty", config=config(engine="arm"),
                           source=faulty_source, frames=50)
        service.start()
        report = service.wait()

        # the fault surfaced, attributed to its stream
        assert "faulty" in report.errors
        assert "VideoError" in report.errors["faulty"]
        assert "dropped" in report.errors["faulty"]
        assert report.scheduler["faulty"]["outcome"] == "errored"
        assert report.events["counts"]["error"] == 1

        # the faulting stream released everything: leases balance,
        # admission is empty, its source is closed
        assert report.pool["granted"] == report.pool["released"]
        assert report.pool["outstanding"] == 0
        assert report.admission["in_flight"] == 0
        assert faulty_source.closed

        # its ledger reconciles: both good frames were offered, and
        # every admitted frame is finalized or errored
        faulty = report.ledger["streams"]["faulty"]
        assert faulty["offered"] == 2
        assert faulty["admitted"] == \
            faulty["finalized"] + faulty["errored"]
        assert report.ledger["balanced"]

        # the healthy tenant is bitwise-undisturbed
        assert report.scheduler["healthy"]["outcome"] == "completed"
        assert_bitwise_parity(solo_results({}, 3, 6),
                              report.streams["healthy"].records,
                              label="healthy")

    def test_faulty_stream_error_does_not_raise_from_wait(self):
        service = FusionService(pool={"neon": 1}, live=True)
        service.add_stream("faulty", config=config(),
                           source=LossyCableSource(fail_at=0), frames=5)
        service.start()
        report = service.wait()  # must not raise: live errors isolate
        assert set(report.errors) == {"faulty"}
        assert report.streams["faulty"].frames == 0


# ----------------------------------------------------------------------
class TestShedding:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError, match="high_watermark"):
            ShedPolicy(high_watermark=1.5)
        with pytest.raises(ConfigurationError, match="low_watermark"):
            ShedPolicy(high_watermark=0.5, low_watermark=0.5)
        with pytest.raises(ConfigurationError, match="max_shed_fraction"):
            ShedPolicy(max_shed_fraction=0.0)

    def test_hysteresis_band(self):
        shedder = Shedder(ShedPolicy(high_watermark=1.0,
                                     low_watermark=0.5), max_in_flight=8)
        assert not shedder.update(7)     # below high: stays off
        assert shedder.update(8)         # engages at the watermark
        assert shedder.update(5)         # inside the band: stays on
        assert not shedder.update(4)     # at low: disengages
        assert shedder.engagements == 1

    def test_only_lowest_class_present_sheds(self):
        shedder = Shedder(ShedPolicy(), max_in_flight=4)
        # engaged (in_flight at the watermark); critical rank 0 vs
        # background rank 2 present
        assert not shedder.should_shed("crit", rank=0, lowest_rank=2,
                                       offered=10, shed=0, in_flight=4)
        assert shedder.should_shed("bg", rank=2, lowest_rank=2,
                                   offered=10, shed=0, in_flight=4)

    def test_shed_fraction_bound_blocks_past_the_limit(self):
        shedder = Shedder(ShedPolicy(max_shed_fraction=0.5),
                          max_in_flight=4)
        assert shedder.should_shed("bg", rank=2, lowest_rank=2,
                                   offered=10, shed=4, in_flight=4)
        # (6+1) > 0.5*(12+1): past the bound the stream must block
        assert not shedder.should_shed("bg", rank=2, lowest_rank=2,
                                       offered=12, shed=6, in_flight=4)

    def test_overload_sheds_background_never_critical(self):
        """Synthetic overload: a starved budget with one worker; only
        the background class sheds frames, whole, ledgered."""
        service = FusionService(
            pool={"neon": 1}, max_in_flight=2, stream_queue_depth=1,
            workers=1,
            shedding=ShedPolicy(high_watermark=1.0, low_watermark=0.0,
                                max_shed_fraction=0.8))
        service.add_stream("critical", config=config(),
                           source=SyntheticSource(seed=1), frames=6,
                           slo=StreamSLO(priority_class="critical"))
        for index in range(2):
            service.add_stream(f"bg-{index}", config=config(),
                               source=SyntheticSource(seed=2 + index),
                               frames=12,
                               slo=StreamSLO(
                                   priority_class="background"))
        report = service.serve()
        totals = report.ledger["totals"]
        assert report.ledger["balanced"]
        assert totals["shed"] > 0
        assert totals["offered"] == totals["admitted"] + totals["shed"]
        # whole frames only: finalized + shed for each background
        # stream covers every offered frame
        for name in ("bg-0", "bg-1"):
            entry = report.ledger["streams"][name]
            assert entry["offered"] \
                == entry["finalized"] + entry["shed"]
        # the critical tenant never lost a frame
        assert report.streams["critical"].throughput["shed"] == 0
        assert report.streams["critical"].frames == 6
        assert report.shedding["shed_total"] == totals["shed"]
        assert report.shedding["engagements"] >= 1
        assert report.events["counts"]["shed"] == totals["shed"]


# ----------------------------------------------------------------------
class TestServiceReportJson:
    """Satellite: ServiceReport.as_dict() is json.dumps-able with
    stable keys, SLO/shedding/metrics snapshots included."""

    TOP_KEYS = {
        "frames_total", "wall_seconds", "aggregate_fps",
        "energy_mj_total", "energy_mj_by_stream", "engine_occupancy",
        "pool", "admission", "scheduler", "cancelled", "ledger",
        "slo", "shedding", "metrics", "events", "errors", "streams",
    }

    @pytest.fixture(scope="class")
    def report(self):
        service = FusionService(
            pool={"neon": 1}, max_in_flight=2, stream_queue_depth=1,
            shedding=ShedPolicy(high_watermark=1.0, low_watermark=0.0))
        service.add_stream("slo-cam", config=config(),
                           source=SyntheticSource(seed=1), frames=4,
                           slo=StreamSLO(target_fps=2.0,
                                         priority_class="critical"))
        service.add_stream("bg-cam", config=config(),
                           source=SyntheticSource(seed=2), frames=4,
                           slo=StreamSLO(priority_class="background"))
        return service.serve()

    def test_round_trips_through_json(self, report):
        payload = report.as_dict()
        parsed = json.loads(json.dumps(payload))
        assert set(parsed) == self.TOP_KEYS
        # the accounting sections survive the round trip verbatim
        assert parsed["ledger"] == payload["ledger"]
        assert parsed["slo"] == payload["slo"]
        assert parsed["shedding"] == payload["shedding"]
        assert parsed["events"] == payload["events"]
        assert parsed["errors"] == {}

    def test_sections_carry_the_ops_state(self, report):
        payload = report.as_dict()
        assert payload["ledger"]["balanced"] is True
        assert payload["slo"]["headroom"] == 1.0
        assert payload["slo"]["committed"] == {}
        assert payload["shedding"]["policy"]["high_watermark"] == 1.0
        assert payload["metrics"][
            "repro_serve_streams_attached_total"]["series"]["{}"] == 2
        assert payload["events"]["counts"]["attach"] == 2
        assert set(payload["streams"]) == {"slo-cam", "bg-cam"}

    def test_describe_reports_the_ledger_line(self, report):
        text = report.describe()
        assert "frame ledger" in text
        assert "balanced" in text
