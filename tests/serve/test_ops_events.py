"""EventLog: bounded ring, monotonic stamps, JSONL export."""

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.serve import EventLog
from repro.serve.ops.events import EVENT_KINDS


class TestEmit:
    def test_sequence_numbers_and_monotonic_stamps(self):
        log = EventLog()
        first = log.emit("attach", "cam-a", index=0)
        second = log.emit("lease", "cam-a", engine="neon")
        assert (first.seq, second.seq) == (1, 2)
        assert second.monotonic_s >= first.monotonic_s
        assert log.total == 2

    def test_unknown_kind_rejected(self):
        log = EventLog()
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            log.emit("reboot")
        assert log.total == 0

    def test_every_declared_kind_accepted(self):
        log = EventLog()
        for kind in EVENT_KINDS:
            log.emit(kind)
        assert log.counts() == {kind: 1 for kind in EVENT_KINDS}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            EventLog(capacity=0)


class TestRing:
    def test_old_events_age_out_but_stay_counted(self):
        log = EventLog(capacity=4)
        for index in range(10):
            log.emit("shed", "cam", index=index)
        assert log.total == 10
        assert log.counts() == {"shed": 10}
        retained = log.events()
        assert len(retained) == 4
        assert [event.seq for event in retained] == [7, 8, 9, 10]

    def test_kind_filter(self):
        log = EventLog()
        log.emit("attach", "a")
        log.emit("shed", "a")
        log.emit("attach", "b")
        assert [e.stream for e in log.events("attach")] == ["a", "b"]
        assert log.events("reject") == []

    def test_snapshot_summary(self):
        log = EventLog(capacity=2)
        for _ in range(3):
            log.emit("lease")
        snapshot = log.snapshot()
        assert snapshot == {"total": 3, "retained": 2, "capacity": 2,
                            "counts": {"lease": 3}}
        json.dumps(snapshot)


class TestExport:
    def test_jsonl_one_parseable_line_per_event(self):
        log = EventLog()
        log.emit("attach", "cam-a", priority_class="critical")
        log.emit("service", phase="start")
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "attach"
        assert first["stream"] == "cam-a"
        assert first["priority_class"] == "critical"
        second = json.loads(lines[1])
        assert second["kind"] == "service"
        assert "stream" not in second  # service-wide event
        assert second["seq"] == 2

    def test_dump_writes_file_and_returns_count(self, tmp_path):
        log = EventLog()
        log.emit("attach", "a")
        log.emit("detach", "a", outcome="completed")
        path = tmp_path / "events.jsonl"
        assert log.dump(path) == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] \
            == ["attach", "detach"]

    def test_concurrent_emit_keeps_unique_ordered_seqs(self):
        log = EventLog()

        def pump():
            for _ in range(200):
                log.emit("lease", "cam")

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert log.total == 800
        seqs = [event.seq for event in log.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
