"""Churn soak: ≥1000 short-lived streams through one live service.

The live-ops acceptance bar, measured rather than asserted by hand:
a ``live=True`` :class:`~repro.serve.FusionService` must churn
through a thousand attach/serve/retire cycles with

* **balanced accounting** — every lease released
  (``granted == released``), every offered frame finalized, shed or
  errored (``admitted == finalized + shed + errored``), every
  admission ticket returned;
* **no leaked threads** — capture threads die with their streams; at
  the end the process is back to its pre-service thread count;
* **flat memory** — :meth:`reap` drops all per-stream state, so RSS
  after the warm-up wave does not grow with the number of streams
  churned.

Runs only under ``-m soak`` (the CI step gives it a deadlock-guarding
``timeout(1)``); ``REPRO_SOAK_STREAMS`` scales the churn.
"""

import gc
import os
import resource
import threading
import time
import tracemalloc

import pytest

from repro.serve import FusionService, ShardedFusionService
from repro.session import FusionConfig, SyntheticSource
from repro.types import FrameShape

TINY = FrameShape(32, 24)

#: the ISSUE's bar: at least 1000 short-lived streams
TOTAL_STREAMS = int(os.environ.get("REPRO_SOAK_STREAMS", "1000"))
#: the sharded soak churns fewer streams by default — every frame
#: crosses two process boundaries, so the same invariants are probed
#: at a volume that keeps the deadlock-guarded CI step comfortable
SHARDED_STREAMS = int(os.environ.get("REPRO_SOAK_SHARD_STREAMS", "400"))
FRAMES_PER_STREAM = 2
WAVE = 8
#: streams churned before the RSS high-water mark is taken
WARMUP_STREAMS = min(200, TOTAL_STREAMS // 4)
#: allowed RSS growth after warm-up (KiB; ru_maxrss unit on Linux) —
#: a leaked session per stream would blow through this instantly
RSS_GROWTH_KIB = 32 * 1024


def tiny_config(engine="neon"):
    return FusionConfig(engine=engine, fusion_shape=TINY, levels=2,
                        seed=5, quality_metrics=False,
                        keep_records=False)


def churn(service, total, reports, start_index=0):
    """Attach ``total`` streams in bounded waves, reaping as they
    retire; returns the next unused stream index."""
    attached = 0
    reaped = 0
    while reaped < total:
        while attached < total and len(service.stream_names()) < WAVE:
            index = start_index + attached
            engine = "neon" if index % 2 == 0 else "arm"
            service.attach(f"soak-{index}",
                           config=tiny_config(engine),
                           source=SyntheticSource(seed=index % 13),
                           frames=FRAMES_PER_STREAM)
            attached += 1
        got = service.reap()
        reaped += len(got)
        reports.update(got)
        if not got:
            time.sleep(0.001)
    return start_index + attached


@pytest.mark.soak
def test_thousand_stream_churn_soak():
    baseline_threads = threading.active_count()
    reports = {}
    service = FusionService(pool={"neon": 1, "arm": 1}, max_in_flight=8,
                            stream_queue_depth=4, live=True,
                            event_capacity=256)
    service.start()
    try:
        # warm-up wave, then take the memory high-water mark
        next_index = churn(service, WARMUP_STREAMS, reports)
        warm_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

        churn(service, TOTAL_STREAMS - WARMUP_STREAMS, reports,
              start_index=next_index)
        final_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

        report = service.wait()
    finally:
        service.close()

    # every stream retired, every frame fused
    assert len(reports) == TOTAL_STREAMS
    assert all(r.frames == FRAMES_PER_STREAM for r in reports.values())
    assert report.admission["retired_streams"] == TOTAL_STREAMS

    # lease accounting balances exactly
    pool = report.pool
    assert pool["granted"] == pool["released"]
    assert pool["outstanding"] == 0

    # frame ledger balances exactly (no shedding configured, nothing
    # errored: offered == admitted == finalized)
    totals = report.ledger["totals"]
    expected = TOTAL_STREAMS * FRAMES_PER_STREAM
    assert report.ledger["balanced"]
    assert totals["offered"] == expected
    assert totals["admitted"] == expected
    assert totals["finalized"] == expected
    assert totals["shed"] == 0
    assert totals["errored"] == 0
    assert report.admission["in_flight"] == 0
    assert report.admission["admitted_total"] == expected

    # reap() really dropped per-stream state: nothing retained beyond
    # the final report's aggregates
    assert service.stream_names() == []
    assert service._retired == {}
    assert len(report.admission["peak_queued"]) == 0
    # the bounded event ring stayed bounded
    assert report.events["retained"] <= 256
    assert report.events["counts"]["attach"] == TOTAL_STREAMS
    assert report.events["counts"]["detach"] == TOTAL_STREAMS

    # no leaked threads: captures and workers all joined
    assert threading.active_count() == baseline_threads

    # flat memory: churning 4x the warm-up adds no per-stream residue
    growth_kib = final_kib - warm_kib
    assert growth_kib < RSS_GROWTH_KIB, (
        f"RSS grew {growth_kib} KiB across "
        f"{TOTAL_STREAMS - WARMUP_STREAMS} churned streams "
        f"(warm {warm_kib} KiB -> final {final_kib} KiB)")


def _shard_rss_kib(service):
    """Live VmRSS of every shard process, by /proc (Linux)."""
    out = {}
    for handle in service._handles:
        try:
            with open(f"/proc/{handle.process.pid}/status") as fh:
                for line in fh:
                    if line.startswith("VmRSS:"):
                        out[handle.index] = int(line.split()[1])
                        break
        except OSError:  # pragma: no cover - process already gone
            pass
    return out


def _quiesce(service):
    """Wait until nothing is attached (all waves reaped)."""
    while service.stream_names():
        time.sleep(0.005)
    gc.collect()


@pytest.mark.soak
def test_sharded_churn_soak():
    """The same churn bar through the process-sharded tier: global
    lease/frame accounting must balance across shard processes, the
    parent must stay memory-flat, and the shard-side ``reap`` relay
    must keep the shard interpreters flat too.

    Parent flatness is measured on the *Python heap* (tracemalloc),
    not RSS: the parent's feeder threads churn large short-lived
    scene arrays every frame, which makes the allocator high-water
    mark wildly sensitive to GC pacing (pytest plugins that register
    ``gc.callbacks`` shift it by hundreds of MiB) while retained
    objects — the thing ``reap`` must actually bound — stay exact.
    """
    warmup = min(100, SHARDED_STREAMS // 4)
    reports = {}
    service = ShardedFusionService(pool={"neon": 1, "arm": 1}, shards=2,
                                   max_in_flight=8,
                                   stream_queue_depth=4, live=True,
                                   event_capacity=256)
    service.start()
    try:
        next_index = churn(service, warmup, reports)
        _quiesce(service)
        warm_shards = _shard_rss_kib(service)
        tracemalloc.start()

        churn(service, SHARDED_STREAMS - warmup, reports,
              start_index=next_index)
        _quiesce(service)
        heap_growth_kib = tracemalloc.get_traced_memory()[0] // 1024
        tracemalloc.stop()
        final_shards = _shard_rss_kib(service)

        report = service.wait()
    finally:
        service.close()

    # every stream retired through its shard, every frame fused
    assert len(reports) == SHARDED_STREAMS
    assert all(r.frames == FRAMES_PER_STREAM for r in reports.values())
    assert not report.errors

    # fleet-wide lease accounting balances exactly: the parent pool is
    # the single broker, so granted == released across both shards
    pool = report.pool
    assert pool["granted"] == pool["released"]
    assert pool["outstanding"] == 0

    # the merged frame ledger balances globally
    totals = report.ledger["totals"]
    expected = SHARDED_STREAMS * FRAMES_PER_STREAM
    assert report.ledger["balanced"]
    assert totals["offered"] == expected
    assert totals["finalized"] == expected
    assert totals["shed"] == 0 and totals["errored"] == 0
    assert report.admission["admitted_total"] == expected
    assert report.admission["retired_streams"] == SHARDED_STREAMS

    # the shard-side event rings saw every attach/detach
    assert report.events["counts"]["attach"] == SHARDED_STREAMS
    assert report.events["counts"]["detach"] == SHARDED_STREAMS
    assert report.events["counts"]["shard_start"] == 2

    # reap() dropped parent-side per-stream state
    assert service.stream_names() == []

    # flat parent memory: everything allocated after warm-up and still
    # alive once all streams are reaped is per-stream residue (plus
    # the reports dict this test legitimately keeps — ~KiB/stream); a
    # leaked session or entry per stream would be MiB/stream
    assert heap_growth_kib < RSS_GROWTH_KIB, (
        f"parent heap retained {heap_growth_kib} KiB across "
        f"{SHARDED_STREAMS - warmup} sharded streams")
    # flat shard memory: the reap relay keeps retired state from
    # accumulating inside the shard interpreters
    for index, warm in warm_shards.items():
        grown = final_shards.get(index, warm) - warm
        assert grown < RSS_GROWTH_KIB, (
            f"shard {index} RSS grew {grown} KiB across "
            f"{SHARDED_STREAMS - warmup} churned streams")
