"""EnginePool lease/release protocol and admission-control units."""

import threading

import pytest

from repro.errors import ConfigurationError, FusionError
from repro.hw.registry import create_engines
from repro.serve import AdmissionController, EnginePool


class TestCreateEngines:
    def test_mapping_spec(self):
        engines = create_engines({"arm": 1, "fpga": 2})
        assert [e.name for e in engines] == ["arm", "fpga", "fpga"]

    def test_sequence_spec_with_repeats(self):
        engines = create_engines(("neon", "neon", "fpga"))
        assert [e.name for e in engines] == ["neon", "neon", "fpga"]
        assert len({id(e) for e in engines}) == 3

    @pytest.mark.parametrize("bad", [
        {}, (), {"arm": 0}, {"arm": -1}, {"arm": 1.5}, {"warp": 1},
        ("warp",), "arm", 7,
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            create_engines(bad)


class TestEnginePool:
    def test_inventory_and_labels(self):
        pool = EnginePool({"arm": 1, "fpga": 2})
        assert pool.size == 3
        assert pool.names() == ("arm", "fpga")
        assert pool.count("fpga") == 2
        assert pool.count("neon") == 0
        assert set(pool.stats()["busy_s"]) == {"arm[0]", "fpga[0]",
                                               "fpga[1]"}

    def test_lease_release_roundtrip_accounting(self):
        pool = EnginePool({"fpga": 2})
        a = pool.lease("fpga")
        b = pool.lease("fpga")
        assert {a.name, b.name} == {"fpga"}
        assert a.engine is not b.engine
        assert pool.idle_count("fpga") == 0
        assert pool.outstanding == 2
        a.release()
        b.release()
        stats = pool.stats()
        assert stats["granted"] == 2
        assert stats["released"] == 2
        assert stats["outstanding"] == 0
        assert stats["peak_outstanding"] == 2

    def test_release_is_idempotent(self):
        pool = EnginePool({"neon": 1})
        lease = pool.lease("neon")
        assert lease.release() is True
        assert lease.release() is False
        assert pool.stats()["released"] == 1
        # the instance went back exactly once: it can be leased again
        again = pool.lease("neon")
        assert again.engine is lease.engine
        again.release()

    def test_lease_is_a_context_manager(self):
        pool = EnginePool({"neon": 1})
        with pool.lease("neon") as lease:
            assert not lease.released
        assert lease.released
        assert pool.idle_count("neon") == 1

    def test_unknown_engine_rejected(self):
        pool = EnginePool({"neon": 1})
        with pytest.raises(ConfigurationError, match="inventory"):
            pool.lease("fpga")
        with pytest.raises(ConfigurationError):
            pool.try_lease("fpga")

    def test_try_lease_never_blocks(self):
        pool = EnginePool({"neon": 1})
        held = pool.try_lease("neon")
        assert held is not None
        assert pool.try_lease("neon") is None
        held.release()
        assert pool.try_lease("neon") is not None

    def test_lease_timeout_raises_fusion_error(self):
        pool = EnginePool({"neon": 1})
        held = pool.lease("neon")
        with pytest.raises(FusionError, match="timed out"):
            pool.lease("neon", timeout=0.05)
        assert pool.stats()["waits"] >= 1
        held.release()

    def test_lease_blocks_until_release(self):
        pool = EnginePool({"neon": 1})
        held = pool.lease("neon")
        got = []

        def taker():
            got.append(pool.lease("neon", timeout=5.0))

        thread = threading.Thread(target=taker, daemon=True)
        thread.start()
        held.release()
        thread.join(timeout=5.0)
        assert got and got[0].name == "neon"
        got[0].release()
        assert pool.stats()["granted"] == 2
        assert pool.stats()["released"] == 2

    def test_closed_pool_refuses_new_leases_but_takes_returns(self):
        pool = EnginePool({"neon": 1})
        held = pool.lease("neon")
        pool.close()
        with pytest.raises(FusionError, match="closed"):
            pool.lease("neon")
        with pytest.raises(FusionError, match="closed"):
            pool.try_lease("neon")
        # accounting still balances after close
        held.release()
        assert pool.stats()["outstanding"] == 0

    def test_occupancy_fractions(self):
        pool = EnginePool({"neon": 1})
        pool.lease("neon").release()
        occupancy = pool.occupancy(1000.0)
        assert 0.0 <= occupancy["neon[0]"] < 1.0
        assert pool.occupancy(0.0) == {"neon[0]": 0.0}

    def test_pool_accepts_prebuilt_engine_instances(self):
        engines = create_engines({"arm": 1, "neon": 1})
        pool = EnginePool(engines)
        assert pool.size == 2
        lease = pool.lease("arm")
        assert lease.engine is engines[0]
        lease.release()


class TestAdmissionController:
    def make(self, max_in_flight=4, depth=2):
        cond = threading.Condition()
        controller = AdmissionController(cond, max_in_flight, depth)
        controller.register("s")
        return cond, controller

    def test_bounds_validated(self):
        cond = threading.Condition()
        with pytest.raises(ConfigurationError):
            AdmissionController(cond, 0, 2)
        with pytest.raises(ConfigurationError):
            AdmissionController(cond, 2, 0)
        controller = AdmissionController(cond, 2, 2)
        controller.register("s")
        with pytest.raises(ConfigurationError, match="registered"):
            controller.register("s")

    def test_admits_until_stream_depth(self):
        cond, controller = self.make(max_in_flight=10, depth=2)
        assert controller.admit("s", lambda: False)
        assert controller.admit("s", lambda: False)
        # third admit would exceed the per-stream queue: the stop
        # callable is the only way out of the backpressure wait
        calls = []

        def stop():
            calls.append(True)
            return len(calls) > 2

        assert not controller.admit("s", stop)
        snap = controller.snapshot()
        assert snap["peak_queued"]["s"] == 2
        assert snap["in_flight"] == 2

    def test_global_budget_spans_streams(self):
        cond, controller = self.make(max_in_flight=2, depth=2)
        controller.register("t")
        assert controller.admit("s", lambda: False)
        assert controller.admit("t", lambda: False)
        stop_now = [False]
        result = []

        def late_admit():
            result.append(controller.admit("s", lambda: stop_now[0]))

        thread = threading.Thread(target=late_admit, daemon=True)
        thread.start()
        # draining one frame unblocks the waiter
        with cond:
            controller.on_dispatch("t", 1)
            controller.on_done("t", 1)
        thread.join(timeout=5.0)
        assert result == [True]
        assert controller.snapshot()["peak_in_flight"] == 2

    def test_retract_undoes_an_unused_ticket(self):
        cond, controller = self.make()
        assert controller.admit("s", lambda: False)
        with cond:
            controller.retract("s")
        snap = controller.snapshot()
        assert snap["in_flight"] == 0
        assert snap["queued"]["s"] == 0
        assert snap["admitted"]["s"] == 0
