"""StreamSLO: validation, feasibility admission, deficit scheduling."""

import pytest

from repro.errors import ConfigurationError, FusionError
from repro.serve import FusionService, SLORejection, StreamSLO
from repro.serve.ops.slo import (
    BEST_EFFORT,
    CLASS_WEIGHTS,
    PRIORITY_CLASSES,
    check_feasible,
)
from repro.session import FusionConfig, SyntheticSource
from repro.types import FrameShape

TINY = FrameShape(32, 24)


def config(**overrides):
    defaults = dict(engine="neon", fusion_shape=TINY, levels=2, seed=5,
                    quality_metrics=False)
    defaults.update(overrides)
    return FusionConfig(**defaults)


# ----------------------------------------------------------------------
class TestStreamSLO:
    def test_defaults_are_best_effort_standard(self):
        slo = StreamSLO()
        assert slo.target_fps == 0.0
        assert slo.latency_budget_s is None
        assert slo.priority_class == "standard"
        assert BEST_EFFORT == slo

    def test_weight_and_rank_follow_class(self):
        for rank, name in enumerate(PRIORITY_CLASSES):
            slo = StreamSLO(priority_class=name)
            assert slo.rank == rank
            assert slo.weight == CLASS_WEIGHTS[name]
        assert StreamSLO(priority_class="critical").weight \
            > StreamSLO(priority_class="background").weight

    def test_negative_fps_rejected(self):
        with pytest.raises(ConfigurationError, match="target_fps"):
            StreamSLO(target_fps=-1.0)

    def test_nonpositive_latency_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="latency_budget_s"):
            StreamSLO(latency_budget_s=0.0)

    def test_unknown_priority_class_rejected(self):
        with pytest.raises(ConfigurationError, match="priority_class"):
            StreamSLO(priority_class="vip")

    def test_dict_round_trip(self):
        slo = StreamSLO(target_fps=12.5, latency_budget_s=0.2,
                        priority_class="critical")
        assert StreamSLO.from_dict(slo.as_dict()) == slo

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown SLO key"):
            StreamSLO.from_dict({"target_fps": 5.0, "fps": 5.0})


# ----------------------------------------------------------------------
class TestCheckFeasible:
    POOL = {"neon": 1, "fpga": 2}

    def test_best_effort_reserves_nothing(self):
        demand = check_feasible("s", BEST_EFFORT, {"neon": 0.01}, 1.0,
                                self.POOL, {})
        assert demand == {}

    def test_demand_is_fps_times_seconds_over_instances(self):
        slo = StreamSLO(target_fps=10.0)
        demand = check_feasible("s", slo,
                                {"neon": 0.02, "fpga": 0.04}, 1.0,
                                self.POOL, {})
        assert demand["neon"] == pytest.approx(10.0 * 0.02 / 1)
        assert demand["fpga"] == pytest.approx(10.0 * 0.04 / 2)

    def test_oversubscription_rejected_with_the_numbers(self):
        slo = StreamSLO(target_fps=60.0)
        with pytest.raises(SLORejection, match="neon"):
            check_feasible("cam", slo, {"neon": 0.02}, 2.5, self.POOL,
                           {})

    def test_committed_load_counts_against_the_new_stream(self):
        slo = StreamSLO(target_fps=10.0)  # 0.2x of neon alone
        check_feasible("s", slo, {"neon": 0.02}, 1.0, self.POOL, {})
        with pytest.raises(SLORejection, match="already committed"):
            check_feasible("s", slo, {"neon": 0.02}, 1.0, self.POOL,
                           {"neon": 0.9})

    def test_headroom_scales_the_promise(self):
        slo = StreamSLO(target_fps=30.0)  # 0.6x of one neon
        check_feasible("s", slo, {"neon": 0.02}, 1.0, self.POOL, {})
        with pytest.raises(SLORejection, match="headroom"):
            check_feasible("s", slo, {"neon": 0.02}, 1.0, self.POOL,
                           {}, headroom=0.5)

    def test_latency_budget_below_modelled_frame_time_rejected(self):
        slo = StreamSLO(latency_budget_s=0.005)
        with pytest.raises(SLORejection, match="latency budget"):
            check_feasible("s", slo, {"neon": 0.004, "fpga": 0.002},
                           1.0, self.POOL, {})


# ----------------------------------------------------------------------
class TestServiceSLOAdmission:
    def test_slo_and_priority_are_mutually_exclusive(self):
        service = FusionService(pool={"neon": 1})
        with pytest.raises(ConfigurationError, match="not both"):
            service.add_stream("x", config=config(),
                               source=SyntheticSource(seed=1), frames=2,
                               priority=3.0, slo=StreamSLO())
        service.close()

    def test_infeasible_target_fps_rejected_at_attach(self):
        service = FusionService(pool={"neon": 1})
        with pytest.raises(SLORejection, match="cannot be met"):
            service.add_stream("greedy", config=config(),
                               source=SyntheticSource(seed=1), frames=2,
                               slo=StreamSLO(target_fps=1e9))
        # the rejected stream bound nothing
        assert service.stream_names() == []
        assert service.events.counts().get("reject") == 1
        report = service.metrics_text()
        assert "repro_serve_streams_rejected_total 1" in report
        service.close()

    def test_impossible_latency_budget_rejected_at_attach(self):
        service = FusionService(pool={"neon": 1})
        with pytest.raises(SLORejection, match="latency budget"):
            service.add_stream("snappy", config=config(),
                               source=SyntheticSource(seed=1), frames=2,
                               slo=StreamSLO(latency_budget_s=1e-9))
        service.close()

    def test_retiring_a_stream_releases_its_reservation(self):
        service = FusionService(pool={"neon": 1}, live=True)
        probe = service.attach("probe", config=config(),
                               source=SyntheticSource(seed=1), frames=2)
        # derive a target that fills >half of the single neon, from
        # the same cost model admission uses
        seconds = sum(
            service._streams["probe"].seconds_by_engine.values())
        fps = 0.8 / seconds
        assert probe is not None
        service.detach("probe")

        service.attach("first", config=config(),
                       source=SyntheticSource(seed=2), frames=2,
                       slo=StreamSLO(target_fps=fps))
        with pytest.raises(SLORejection):
            service.attach("second", config=config(),
                           source=SyntheticSource(seed=3), frames=2,
                           slo=StreamSLO(target_fps=fps))
        service.detach("first")
        # the reservation is gone: the same SLO fits again
        service.attach("second", config=config(),
                       source=SyntheticSource(seed=3), frames=2,
                       slo=StreamSLO(target_fps=fps))
        service.start()
        report = service.wait()
        assert report.ledger["balanced"]
        assert report.slo["committed"] == {}

    def test_deficit_pick_prefers_stream_behind_schedule(self):
        """The picker's first key is the normalized SLO deficit: a
        stream behind its target frame schedule beats a best-effort
        one; once it is ahead, the best-effort stream (deficit 0)
        goes next."""
        import time as _time

        service = FusionService(pool={"neon": 1}, workers=1)
        service.add_stream("slo", config=config(),
                           source=SyntheticSource(seed=1), frames=2,
                           batch_frames=1,
                           slo=StreamSLO(target_fps=5.0))
        service.add_stream("easy", config=config(),
                           source=SyntheticSource(seed=2), frames=2,
                           batch_frames=1)
        pair = next(iter(SyntheticSource(seed=9).frames()))
        now = _time.monotonic()
        with service._cond:
            for name in ("slo", "easy"):
                st = service._streams[name]
                st.pending.append(st.processor.ingest(pair, 0))
                st.t_attach = now
            # 10 s behind a 5 fps schedule: a 50-frame deficit
            service._streams["slo"].t_attach = now - 10.0
            picked, tasks, lease = service._select_locked()
            assert picked.name == "slo"
            lease.release()
            # far ahead of schedule: the deficit goes negative and
            # the best-effort stream (deficit 0) wins the first key
            service._streams["slo"].pending.append(
                service._streams["slo"].processor.ingest(pair, 1))
            service._streams["slo"].busy = False
            service._streams["slo"].dispatched = 1000
            picked, tasks, lease = service._select_locked()
            assert picked.name == "easy"
            lease.release()
        service.close()

    def test_missed_fps_target_is_recorded_as_violation(self):
        """A feasible-but-missed target (source slower than the SLO)
        retires with an fps violation — informational, not fatal."""
        import time as _time

        import numpy as np

        from repro.session import FramePair, FrameSource

        class SlowSource(FrameSource):
            def frames(self):
                for i in range(4):
                    _time.sleep(0.05)
                    yield FramePair(
                        visible=np.full((24, 32), 10.0 + i),
                        thermal=np.full((24, 32), 200.0 - i),
                        timestamp_s=i / 25.0, index=i)

        service = FusionService(pool={"neon": 1})
        # ~18 ms modelled frame time: 40 fps is feasible at
        # admission, but a 20 fps source can never deliver it
        service.add_stream("laggard", config=config(),
                           source=SlowSource(), frames=4,
                           slo=StreamSLO(target_fps=40.0))
        report = service.serve()
        violations = report.slo["violations"]["laggard"]
        assert any(v["kind"] == "fps" for v in violations)
        fps_violation = next(v for v in violations
                             if v["kind"] == "fps")
        assert fps_violation["achieved"] < fps_violation["target"]
        assert report.events["counts"]["slo_violation"] >= 1
