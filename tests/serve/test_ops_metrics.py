"""MetricsRegistry: instrument semantics, Prometheus exposition, and
the acceptance gate that the scrape agrees with the ServiceReport."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.serve import FusionService, MetricsRegistry
from repro.serve.ops.metrics import (
    DEFAULT_BUCKETS,
    iter_samples,
    parse_prometheus,
)
from repro.session import FusionConfig, SyntheticSource
from repro.types import FrameShape

SMALL = FrameShape(32, 24)
MID = FrameShape(40, 40)

POOL = {"arm": 1, "neon": 1, "fpga": 2}

#: the 4-stream acceptance workload (mirrors test_service.py)
MIXED_WORKLOAD = (
    ("batch-a", dict(engine="neon", executor="batch", batch_size=4,
                     fusion_shape=SMALL), 11),
    ("batch-b", dict(engine="fpga", executor="batch", batch_size=4,
                     fusion_shape=SMALL), 12),
    ("temporal", dict(engine="arm", temporal=True), 13),
    ("registration", dict(engine="fpga", registration=True), 14),
)


def config(**overrides):
    defaults = dict(engine="neon", fusion_shape=MID, levels=2, seed=5,
                    quality_metrics=False)
    defaults.update(overrides)
    return FusionConfig(**defaults)


# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        frames = registry.counter("frames_total", "Frames")
        frames.inc()
        frames.inc(2.5)
        assert frames.labels().value == 3.5
        with pytest.raises(ConfigurationError, match="only go up"):
            frames.inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        active = registry.gauge("active", "Active")
        active.set(5)
        active.inc(2)
        active.dec(3)
        assert active.labels().value == 4.0

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        leases = registry.counter("leases_total", "Leases")
        leases.labels(engine="neon").inc(3)
        leases.labels(engine="fpga").inc(1)
        assert leases.labels(engine="neon").value == 3
        assert leases.labels(engine="fpga").value == 1
        # same label set -> the same child
        assert leases.labels(engine="neon") is leases.labels(engine="neon")

    def test_histogram_counts_sum_and_cumulative_buckets(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "Latency",
                                     buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            latency.labels().observe(value)
        assert latency.labels().count == 5
        assert latency.labels().sum == pytest.approx(56.05)
        samples = parse_prometheus(registry.render_prometheus())
        assert samples['latency_seconds_bucket{le="0.1"}'] == 1
        assert samples['latency_seconds_bucket{le="1"}'] == 3
        assert samples['latency_seconds_bucket{le="10"}'] == 4
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 5
        assert samples["latency_seconds_count"] == 5
        assert samples["latency_seconds_sum"] == pytest.approx(56.05)

    def test_histogram_default_buckets_sorted(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", "H")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_reregistering_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "X")
        assert registry.counter("x_total") is first
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("x_total")

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="invalid metric"):
            registry.counter("9frames", "bad")
        with pytest.raises(ConfigurationError, match="invalid metric"):
            registry.counter("frames total", "bad")


# ----------------------------------------------------------------------
class TestExposition:
    def test_help_and_type_headers(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", "Frames fused").inc()
        text = registry.render_prometheus()
        assert "# HELP frames_total Frames fused" in text
        assert "# TYPE frames_total counter" in text
        assert text.endswith("\n")

    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "A").labels(k="v").inc(7)
        registry.gauge("g", "G").set(2.25)
        registry.histogram("h", "H", buckets=(1.0,)).labels().observe(0.5)
        samples = parse_prometheus(registry.render_prometheus())
        assert samples['a_total{k="v"}'] == 7
        assert samples["g"] == 2.25
        assert samples['h_bucket{le="1"}'] == 1
        assert samples['h_bucket{le="+Inf"}'] == 1
        assert samples["h_sum"] == 0.5
        assert samples["h_count"] == 1
        assert dict(iter_samples(registry.render_prometheus())) \
            == samples

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", "G").labels(path='a"b\\c').set(1)
        text = registry.render_prometheus()
        assert 'path="a\\"b\\\\c"' in text

    def test_infinite_gauge_renders_as_inf(self):
        registry = MetricsRegistry()
        registry.gauge("g", "G").set(math.inf)
        assert "g +Inf" in registry.render_prometheus()

    def test_snapshot_is_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total", "C").inc(2)
        registry.histogram("h", "H", buckets=(1.0,)).labels().observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        assert snapshot["c_total"]["kind"] == "counter"
        assert snapshot["c_total"]["series"]["{}"] == 2
        assert snapshot["h"]["series"]["{}"]["count"] == 1


# ----------------------------------------------------------------------
class TestScrapeAgreesWithReport:
    """The ISSUE's acceptance gate: on the 4-stream workload,
    ``render_prometheus()`` numerically agrees with the
    ServiceReport's aggregates — fps, per-engine occupancy, energy."""

    @pytest.fixture(scope="class")
    def served(self):
        service = FusionService(pool=POOL, max_in_flight=8,
                                stream_queue_depth=4)
        for name, overrides, seed in MIXED_WORKLOAD:
            service.add_stream(name, config=config(**overrides),
                               source=SyntheticSource(seed=seed),
                               frames=6)
        report = service.serve()
        samples = parse_prometheus(service.metrics_text())
        return report, samples

    def test_aggregate_fps_matches(self, served):
        report, samples = served
        assert samples["repro_serve_aggregate_fps"] \
            == pytest.approx(report.aggregate_fps, rel=1e-9)

    def test_engine_occupancy_matches_per_instance(self, served):
        report, samples = served
        assert report.engine_occupancy  # 4 instances
        for label, frac in report.engine_occupancy.items():
            key = f'repro_serve_engine_occupancy_ratio{{instance="{label}"}}'
            assert samples[key] == pytest.approx(frac, rel=1e-9), label

    def test_energy_split_matches_per_stream(self, served):
        report, samples = served
        for name, millijoules in report.energy_mj_by_stream.items():
            key = f'repro_serve_stream_energy_millijoules{{stream="{name}"}}'
            assert samples[key] == pytest.approx(millijoules, rel=1e-9)

    def test_frames_and_energy_totals_match(self, served):
        report, samples = served
        finalized = sum(value for series, value in samples.items()
                        if series.startswith(
                            "repro_serve_frames_finalized_total"))
        assert finalized == report.frames_total == 24
        energy = sum(value for series, value in samples.items()
                     if series.startswith(
                         "repro_serve_energy_millijoules_total"))
        assert energy == pytest.approx(report.energy_mj_total, rel=1e-6)

    def test_lease_counter_matches_pool_grants(self, served):
        report, samples = served
        leases = sum(value for series, value in samples.items()
                     if series.startswith(
                         "repro_serve_leases_granted_total"))
        assert leases == report.pool["granted"]

    def test_lifecycle_counters_match(self, served):
        report, samples = served
        assert samples["repro_serve_streams_attached_total"] == 4
        retired = sum(value for series, value in samples.items()
                      if series.startswith(
                          "repro_serve_streams_retired_total"))
        assert retired == 4
        assert samples["repro_serve_active_streams"] == 0
        assert samples["repro_serve_in_flight_frames"] == 0

    def test_wall_latency_histogram_counts_every_frame(self, served):
        report, samples = served
        key = ('repro_serve_frame_wall_seconds_count'
               '{priority_class="standard"}')
        assert samples[key] == report.frames_total
