"""Sharded serving: partition, rings, brokered leases, parity, crashes.

The acceptance bars from the sharding issue, as tests:

* **determinism** — fixed seed x any shard count x any worker count =>
  each stream bitwise-identical to its solo run (the single-process
  contract survives the process boundary);
* **exact fleet accounting** — the parent pool's
  ``granted == released + outstanding`` invariant holds across shards
  on success, error, cancel, and a SIGKILLed shard;
* **robustness** — a killed shard's streams are reported failed (never
  hung), its leases are reclaimed, surviving shards complete, and no
  shared-memory segment outlives the service;
* **partition laws** — deterministic, total, balanced (hypothesis).
"""

import glob
import json
import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, FusionError
from repro.serve import ShardedFusionService
from repro.serve.shard import (FrameRing, ShardAssigner, partition_streams)
from repro.serve.shard.ring import SEGMENT_PREFIX, RingClosed
from repro.session import FusionConfig, FusionSession, SyntheticSource
from repro.types import FrameShape

SMALL = FrameShape(32, 24)
MID = FrameShape(40, 40)

#: the paper-shaped shared inventory (same as the FusionService suite)
POOL = {"arm": 1, "neon": 1, "fpga": 2}


def config(**overrides):
    defaults = dict(engine="neon", fusion_shape=MID, levels=2, seed=5,
                    quality_metrics=False, keep_records=True)
    defaults.update(overrides)
    return FusionConfig(**defaults)


#: mixed ARM + NEON + FPGA workload exercising batch, temporal and
#: registration paths across the heterogeneous inventory
MIXED_WORKLOAD = (
    ("batch-a", dict(engine="neon", executor="batch", batch_size=4,
                     fusion_shape=SMALL), 11),
    ("batch-b", dict(engine="fpga", executor="batch", batch_size=4,
                     fusion_shape=SMALL), 12),
    ("temporal", dict(engine="arm", temporal=True), 13),
    ("registration", dict(engine="fpga", registration=True), 14),
)

_SOLO_CACHE = {}


def solo_results(overrides, seed, frames):
    """The golden reference: the same stream run alone (memoized —
    the references are identical across shard-count parametrizations)."""
    key = (tuple(sorted(overrides.items(), key=str)), seed, frames)
    if key not in _SOLO_CACHE:
        with FusionSession(config(**overrides)) as session:
            _SOLO_CACHE[key] = list(
                session.stream(SyntheticSource(seed=seed), limit=frames))
    return _SOLO_CACHE[key]


def sharded_service(shards, frames=6, **service_kwargs):
    kwargs = dict(pool=POOL, max_in_flight=8, stream_queue_depth=4)
    kwargs.update(service_kwargs)
    service = ShardedFusionService(shards=shards, **kwargs)
    for name, overrides, seed in MIXED_WORKLOAD:
        service.add_stream(name, config=config(**overrides),
                           source=SyntheticSource(seed=seed),
                           frames=frames)
    return service


def shard_segments():
    """Every live shared-memory segment this package created."""
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}-*"))


# ----------------------------------------------------------------------
class TestPartition:
    def test_round_robin_over_sorted_names(self):
        placement = partition_streams(["c", "a", "b", "d"], 2)
        assert placement == {"a": 0, "b": 1, "c": 0, "d": 1}

    def test_single_shard_takes_everything(self):
        assert partition_streams(["x", "y"], 1) == {"x": 0, "y": 0}

    def test_rejects_duplicates_and_bad_counts(self):
        with pytest.raises(ConfigurationError):
            partition_streams(["a", "a"], 2)
        with pytest.raises(ConfigurationError):
            partition_streams(["a"], 0)

    @settings(max_examples=60, deadline=None)
    @given(names=st.lists(st.text(min_size=1, max_size=12), min_size=0,
                          max_size=40, unique=True),
           shards=st.integers(min_value=1, max_value=9))
    def test_partition_is_deterministic_total_and_balanced(
            self, names, shards):
        placement = partition_streams(names, shards)
        # deterministic: a function of the name set, not of call order
        assert placement == partition_streams(list(reversed(names)),
                                              shards)
        # total: every stream placed, every target a valid shard
        assert set(placement) == set(names)
        assert all(0 <= shard < shards for shard in placement.values())
        # balanced: no shard holds 2+ more streams than another
        loads = [0] * shards
        for shard in placement.values():
            loads[shard] += 1
        assert max(loads) - min(loads) <= 1

    def test_assigner_balances_under_churn(self):
        assigner = ShardAssigner(3)
        for i in range(9):
            assigner.assign(f"s{i}")
        counts = assigner.live_counts()
        assert max(counts) - min(counts) <= 1
        assigner.release("s0")
        assert assigner.assign("replacement") == assigner.shard_of(
            "replacement")
        counts = assigner.live_counts()
        assert max(counts) - min(counts) <= 1


# ----------------------------------------------------------------------
class TestFrameRing:
    @pytest.fixture()
    def ring(self):
        ring = FrameRing(mp.get_context(), "test", slots=4,
                         slot_bytes=64 * 1024)
        yield ring
        ring.close()

    def test_roundtrip_bitwise_and_in_order(self, ring):
        rng = np.random.default_rng(7)
        sent = []
        for i in range(4):
            arrays = [rng.standard_normal((8, 6)),
                      (rng.standard_normal((8, 6)) * 50).astype(np.float32)]
            sent.append(arrays)
            assert ring.put({"seq": i}, arrays)
        for i in range(4):
            meta, arrays = ring.get()
            assert meta == {"seq": i}
            for ref, got in zip(sent[i], arrays):
                assert got.dtype == ref.dtype
                assert np.array_equal(ref, got)

    def test_empty_payload_message(self, ring):
        assert ring.put({"kind": "end"}, [])
        meta, arrays = ring.get()
        assert meta == {"kind": "end"} and arrays == []

    def test_oversized_message_names_the_knob(self, ring):
        with pytest.raises(ConfigurationError, match="ring_slot_bytes"):
            ring.put({}, [np.zeros((512, 512))])

    def test_full_ring_put_honors_stop(self, ring):
        for i in range(4):
            ring.put({"seq": i}, [])
        t0 = time.monotonic()
        assert ring.put({"seq": 99}, [], should_stop=lambda: True) is False
        assert time.monotonic() - t0 < 2.0
        # nothing was written: the 4 queued messages are intact
        assert ring.get()[0] == {"seq": 0}

    def test_empty_ring_get_honors_stop(self, ring):
        assert ring.get(should_stop=lambda: True) is None

    def test_generation_mismatch_is_detected(self, ring):
        ring.put({"seq": 0}, [])
        # scribble a wrong generation stamp into slot 0
        import struct
        struct.pack_into("<Q", ring._shm.buf, 0, 77)
        with pytest.raises(FusionError, match="generation mismatch"):
            ring.get()

    def test_close_unlinks_and_is_idempotent(self):
        ring = FrameRing(mp.get_context(), "test", slots=2,
                         slot_bytes=4096)
        name = ring.name
        assert os.path.exists(f"/dev/shm/{name}")
        ring.close()
        ring.close()
        assert not os.path.exists(f"/dev/shm/{name}")
        with pytest.raises(RingClosed):
            ring.put({}, [])


# ----------------------------------------------------------------------
class TestShardParity:
    """Fixed seed x any shard count => bitwise-identical to solo."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_mixed_workload_matches_solo_runs(self, shards,
                                              assert_bitwise_parity):
        report = sharded_service(shards, frames=6).serve()
        assert not report.errors
        for name, overrides, seed in MIXED_WORKLOAD:
            assert_bitwise_parity(solo_results(overrides, seed, 6),
                                  report.streams[name].records,
                                  label=f"{name}@shards={shards}")
            assert report.streams[name].frames == 6

    def test_worker_count_is_irrelevant_too(self, assert_bitwise_parity):
        report = sharded_service(2, frames=4, workers=3).serve()
        for name, overrides, seed in MIXED_WORKLOAD:
            assert_bitwise_parity(solo_results(overrides, seed, 4),
                                  report.streams[name].records,
                                  label=f"{name}@workers=3")

    def test_merged_report_shape_matches_single_process(self):
        report = sharded_service(2, frames=4).serve()
        assert set(report.streams) == {n for n, _, _ in MIXED_WORKLOAD}
        assert report.frames_total == 16
        assert report.energy_mj_total == pytest.approx(
            sum(report.energy_mj_by_stream.values()))
        assert report.ledger["balanced"]
        assert report.ledger["totals"]["offered"] == 16
        assert report.admission["admitted_total"] == 16
        assert report.admission["retired_streams"] == 4
        assert set(report.scheduler) == set(report.streams)
        assert report.slo["committed"] == {}
        # the merged metric snapshot carries the shard-side families
        assert "repro_serve_frames_finalized_total" in report.metrics
        assert "repro_serve_aggregate_fps" in report.metrics
        # shard lifecycle shows up in the merged event counts
        assert report.events["counts"]["shard_start"] == 2
        assert report.events["counts"]["attach"] == 4
        assert report.events["counts"]["detach"] == 4
        # and the describe() renderer works on the merged report
        assert "ServiceReport" in report.describe()


# ----------------------------------------------------------------------
class TestLeaseLedger:
    """Fleet-wide granted == released + outstanding, on every path."""

    def test_success_path_balances(self):
        report = sharded_service(2, frames=5).serve()
        pool = report.pool
        assert pool["granted"] == pool["released"]
        assert pool["outstanding"] == 0
        assert pool["granted"] > 0

    def test_cancel_path_balances(self):
        service = sharded_service(2, frames=400)
        service.start()
        time.sleep(0.5)
        service.cancel()
        report = service.wait()
        assert report.cancelled
        pool = report.pool
        assert pool["granted"] == pool["released"]
        assert pool["outstanding"] == 0

    def test_failing_source_still_balances(self):
        class Dies(SyntheticSource):
            def frames(self):
                inner = super().frames()
                for i in range(3):
                    yield next(inner)
                raise RuntimeError("sensor died")

        service = ShardedFusionService(pool=POOL, shards=2)
        service.add_stream("ok", config=config(), frames=6,
                           source=SyntheticSource(seed=1))
        service.add_stream("doomed", config=config(engine="fpga"),
                           frames=6, source=Dies(seed=2))
        report = service.serve()
        # the parent-side source failure is recorded, the stream's
        # delivered frames still fused, and accounting balances
        assert "doomed" in report.errors
        assert report.streams["ok"].frames == 6
        assert report.streams["doomed"].frames == 3
        assert report.ledger["balanced"]
        assert report.pool["granted"] == report.pool["released"]

    def test_shard_kill_reclaims_leases_and_fails_its_streams(self):
        service = sharded_service(2, frames=300)
        service.start()
        time.sleep(0.5)
        victim = service._handles[1]
        victim_streams = [name for name, entry
                          in service._entries.items()
                          if entry.shard == 1]
        assert victim_streams, "partition must give shard 1 streams"
        os.kill(victim.process.pid, signal.SIGKILL)
        report = service.wait()

        # the dead shard's streams failed loudly instead of hanging
        for name in victim_streams:
            assert name in report.errors
            assert "died" in report.errors[name]
        assert "shard[1]" in report.errors
        # the survivors finished their full workload
        for name, entry_shard in ((n, e.shard) for n, e in
                                  service._entries.items()):
            if entry_shard == 0:
                assert report.streams[name].frames == 300
        # every lease the dead shard held came back to the pool
        pool = report.pool
        assert pool["granted"] == pool["released"]
        assert pool["outstanding"] == 0
        # the reclaim is visible in events
        assert report.events["counts"].get("shard_exit", 0) >= 1


# ----------------------------------------------------------------------
class TestShmCleanup:
    """No shared-memory segment outlives the service — ever."""

    def test_normal_drive_leaks_nothing(self):
        before = shard_segments()
        sharded_service(2, frames=3).serve()
        assert shard_segments() == before

    def test_close_without_wait_leaks_nothing(self):
        before = shard_segments()
        service = sharded_service(2, frames=50)
        service.start()
        time.sleep(0.2)
        service.close()
        assert shard_segments() == before

    def test_sigkilled_shard_leaks_nothing(self):
        before = shard_segments()
        service = sharded_service(2, frames=100)
        service.start()
        time.sleep(0.3)
        os.kill(service._handles[0].process.pid, signal.SIGKILL)
        service.wait()
        assert shard_segments() == before

    def test_start_failure_leaks_nothing(self):
        before = shard_segments()
        # 'doomed' wants an engine the pool does not stock; the shard
        # rejects the attach during start(), which must tear down
        service = ShardedFusionService(pool={"neon": 1, "arm": 1},
                                       shards=2)
        service.add_stream("ok", config=config(), frames=2,
                           source=SyntheticSource(seed=1))
        service.add_stream("doomed", config=config(engine="fpga"),
                           frames=2, source=SyntheticSource(seed=2))
        with pytest.raises(ConfigurationError):
            service.start()
        service.close()
        assert shard_segments() == before


# ----------------------------------------------------------------------
class TestLiveSharded:
    def test_live_attach_detach_and_reap(self):
        service = ShardedFusionService(pool=POOL, shards=2, live=True)
        service.start()
        try:
            service.attach("early", config=config(), frames=3,
                           source=SyntheticSource(seed=3))
            service.attach("late", config=config(engine="fpga"),
                           frames=3, source=SyntheticSource(seed=4))
            # both retire on their own (fixed frame budgets)
            reaped = {}
            deadline = time.monotonic() + 60
            while len(reaped) < 2:
                reaped.update(service.reap())
                assert time.monotonic() < deadline
                time.sleep(0.02)
            assert {r.frames for r in reaped.values()} == {3}
            assert service.stream_names() == []
            service.attach("second-wave", config=config(), frames=2,
                           source=SyntheticSource(seed=5))
            report = service.wait()
        finally:
            service.close()
        # reaped streams left the report's stream table but stay in
        # the lifetime totals
        assert set(report.streams) == {"second-wave"}
        assert report.ledger["totals"]["finalized"] == 8
        assert report.pool["granted"] == report.pool["released"]

    def test_detach_returns_the_stream_report(self, assert_bitwise_parity):
        service = ShardedFusionService(pool=POOL, shards=2, live=True)
        service.start()
        try:
            entry = service.attach("cam", config=config(), frames=4,
                                   source=SyntheticSource(seed=6))
            # let the fixed budget finish; detach then hands over the
            # completed stream's report (an immediate detach would
            # legitimately stop the feed early, like the solo service)
            assert entry.retired.wait(timeout=60)
            report = service.detach("cam", timeout=60)
        finally:
            service.close()
        assert report.frames == 4
        assert_bitwise_parity(solo_results({}, 6, 4), report.records,
                              label="detached")

    def test_duplicate_and_unknown_names_rejected(self):
        service = ShardedFusionService(pool=POOL, shards=2, live=True)
        service.start()
        try:
            service.attach("cam", config=config(), frames=2,
                           source=SyntheticSource(seed=1))
            with pytest.raises(ConfigurationError):
                service.attach("cam", config=config(), frames=2,
                               source=SyntheticSource(seed=1))
            with pytest.raises(ConfigurationError):
                service.detach("nobody")
        finally:
            service.close()

    def test_fixed_drive_rejects_late_attach(self):
        service = sharded_service(2, frames=2)
        service.start()
        try:
            with pytest.raises(ConfigurationError):
                service.attach("late", config=config(), frames=2,
                               source=SyntheticSource(seed=9))
        finally:
            service.wait()
            service.close()


# ----------------------------------------------------------------------
class TestConstruction:
    def test_rejects_live_pool_instances(self):
        from repro.serve import EnginePool
        with pytest.raises(ConfigurationError):
            ShardedFusionService(pool=EnginePool(POOL), shards=2)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedFusionService(pool=POOL, shards=0)

    def test_rejects_empty_fixed_drive(self):
        with pytest.raises(ConfigurationError):
            ShardedFusionService(pool=POOL, shards=2).start()

    def test_context_manager_cleans_up(self):
        before = shard_segments()
        with sharded_service(2, frames=2) as service:
            report = service.serve()
        assert report.frames_total == 8
        assert shard_segments() == before
