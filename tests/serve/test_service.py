"""FusionService: N-stream parity, admission, leases, energy accounting."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, FusionError
from repro.serve import EnginePool, FusionService
from repro.session import (
    FramePair,
    FrameSource,
    FusionConfig,
    FusionSession,
    SyntheticSource,
)
from repro.types import FrameShape

SMALL = FrameShape(32, 24)
MID = FrameShape(40, 40)

#: the paper-shaped shared inventory the acceptance workload runs on
POOL = {"arm": 1, "neon": 1, "fpga": 2}


def config(**overrides):
    defaults = dict(engine="neon", fusion_shape=MID, levels=2, seed=5,
                    quality_metrics=False)
    defaults.update(overrides)
    return FusionConfig(**defaults)


#: the 4-stream mixed workload from the issue's acceptance criteria:
#: two small-frame batch streams, one temporal, one registration
MIXED_WORKLOAD = (
    ("batch-a", dict(engine="neon", executor="batch", batch_size=4,
                     fusion_shape=SMALL), 11),
    ("batch-b", dict(engine="fpga", executor="batch", batch_size=4,
                     fusion_shape=SMALL), 12),
    ("temporal", dict(engine="arm", temporal=True), 13),
    ("registration", dict(engine="fpga", registration=True), 14),
)


def mixed_service(frames=6, **service_kwargs):
    kwargs = dict(pool=POOL, max_in_flight=8, stream_queue_depth=4)
    kwargs.update(service_kwargs)
    service = FusionService(**kwargs)
    for name, overrides, seed in MIXED_WORKLOAD:
        service.add_stream(name, config=config(**overrides),
                           source=SyntheticSource(seed=seed),
                           frames=frames)
    return service


def solo_results(overrides, seed, frames=6):
    """The golden reference: the same stream run alone."""
    with FusionSession(config(**overrides)) as session:
        return list(session.stream(SyntheticSource(seed=seed),
                                   limit=frames))


class _ClosableSource(FrameSource):
    def __init__(self, n=100, fail_at=None, shape=(40, 40)):
        self.n = n
        self.fail_at = fail_at
        self.shape = shape
        self.closed = False

    def frames(self):
        for i in range(self.n):
            if self.fail_at is not None and i >= self.fail_at:
                raise RuntimeError("sensor died")
            yield FramePair(visible=np.full(self.shape, 10.0 + i),
                            thermal=np.full(self.shape, 200.0 - i),
                            timestamp_s=i / 25.0, index=i)

    def close(self):
        self.closed = True


# ----------------------------------------------------------------------
class TestServeParity:
    """The determinism contract: fixed seed + any worker count =>
    each stream is bitwise-identical to running it alone."""

    def test_mixed_workload_matches_solo_runs(self, assert_bitwise_parity):
        report = mixed_service(frames=6).serve()
        for name, overrides, seed in MIXED_WORKLOAD:
            assert_bitwise_parity(solo_results(overrides, seed, 6),
                                  report.streams[name].records,
                                  label=name)
            assert report.streams[name].frames == 6

    @pytest.mark.parametrize("workers", [1, 2, 6])
    def test_any_worker_count_same_bits(self, workers,
                                        assert_bitwise_parity):
        report = mixed_service(frames=4, workers=workers).serve()
        for name, overrides, seed in MIXED_WORKLOAD:
            assert_bitwise_parity(solo_results(overrides, seed, 4),
                                  report.streams[name].records,
                                  label=f"{name}@workers={workers}")

    def test_online_scheduler_stream_served_deterministically(
            self, assert_bitwise_parity):
        overrides = dict(engine="online")
        service = FusionService(pool=POOL)
        service.add_stream("online", config=config(**overrides),
                           source=SyntheticSource(seed=21), frames=6)
        report = service.serve()
        assert_bitwise_parity(solo_results(overrides, 21, 6),
                              report.streams["online"].records)
        # the probe phase visited several engines; all were leasable
        assert len(report.streams["online"].engine_usage) >= 2

    def test_per_frame_cadence_forced_with_batch_frames_one(
            self, assert_bitwise_parity):
        service = FusionService(pool={"neon": 1})
        service.add_stream("lowlat", config=config(),
                           source=SyntheticSource(seed=9), frames=5,
                           batch_frames=1)
        report = service.serve()
        assert report.streams["lowlat"].throughput["batch_frames"] == 1
        assert report.streams["lowlat"].throughput["grants"] == 5
        assert_bitwise_parity(solo_results({}, 9, 5),
                              report.streams["lowlat"].records)

    def test_session_serve_interop_matches_run(self, assert_bitwise_parity):
        with FusionSession(config(engine="adaptive", seed=7)) as session:
            reference = session.run(4, source=SyntheticSource(seed=7))
        with FusionSession(config(engine="adaptive", seed=7)) as session:
            served = session.serve(source=SyntheticSource(seed=7),
                                   frames=4)
        assert_bitwise_parity(reference.records, served.records)
        assert served.throughput["executor"] == "serve"


# ----------------------------------------------------------------------
class TestAdmissionBackpressure:
    def test_queue_and_in_flight_bounds_hold(self):
        report = mixed_service(frames=6, max_in_flight=5,
                               stream_queue_depth=2).serve()
        admission = report.admission
        assert admission["peak_in_flight"] <= 5
        for name, peak in admission["peak_queued"].items():
            assert peak <= 2, name
        for name, _, _ in MIXED_WORKLOAD:
            assert report.streams[name].frames == 6

    def test_tight_budget_still_completes(self):
        report = mixed_service(frames=3, max_in_flight=1,
                               stream_queue_depth=1).serve()
        assert report.frames_total == 12
        assert report.admission["peak_in_flight"] == 1

    def test_batch_grants_clamped_to_admission_bounds(self):
        service = FusionService(pool={"neon": 1}, max_in_flight=2,
                                stream_queue_depth=2)
        service.add_stream("s", config=config(executor="batch",
                                              batch_size=16),
                           source=SyntheticSource(seed=3), frames=6)
        report = service.serve()
        # a 16-frame micro-batch cannot accumulate behind a 2-frame
        # budget; the grant size is clamped instead of deadlocking
        assert report.streams["s"].throughput["batch_frames"] == 2
        assert report.streams["s"].frames == 6

    def test_invalid_service_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            FusionService(pool=POOL, max_in_flight=0)
        with pytest.raises(ConfigurationError):
            FusionService(pool=POOL, stream_queue_depth=0)
        with pytest.raises(ConfigurationError):
            FusionService(pool=POOL, workers=0)


# ----------------------------------------------------------------------
class TestLeaseAccounting:
    """Every lease is released — success, error and cancel paths."""

    def assert_balanced(self, pool_stats):
        assert pool_stats["granted"] == pool_stats["released"]
        assert pool_stats["outstanding"] == 0

    def test_released_on_success(self):
        report = mixed_service(frames=4).serve()
        self.assert_balanced(report.pool)
        assert report.pool["granted"] > 0
        # occupancy derives from lease hold times
        assert set(report.engine_occupancy) == {"arm[0]", "neon[0]",
                                                "fpga[0]", "fpga[1]"}
        assert all(0.0 <= frac <= 1.0
                   for frac in report.engine_occupancy.values())

    def test_released_on_source_error(self):
        before = threading.active_count()
        pool = EnginePool(POOL)
        service = FusionService(pool=pool)
        service.add_stream("ok", config=config(),
                           source=SyntheticSource(seed=1), frames=50)
        service.add_stream("bad", config=config(engine="fpga"),
                           source=_ClosableSource(fail_at=2), frames=50)
        with pytest.raises(RuntimeError, match="sensor died"):
            service.serve()
        self.assert_balanced(pool.stats())
        assert threading.active_count() == before

    def test_released_on_stage_error(self):
        class _Bad3D(FrameSource):
            def frames(self):
                yield FramePair(visible=np.zeros((8, 8, 3)),
                                thermal=np.zeros((8, 8)))

        before = threading.active_count()
        pool = EnginePool({"neon": 1})
        service = FusionService(pool=pool)
        service.add_stream("bad", config=config(), source=_Bad3D())
        with pytest.raises(ConfigurationError, match="2-D"):
            service.serve()
        self.assert_balanced(pool.stats())
        assert threading.active_count() == before

    def test_released_on_early_cancel(self):
        before = threading.active_count()
        pool = EnginePool(POOL)
        service = mixed_service(frames=None, pool=pool)  # unbounded
        service.start()
        deadline = time.perf_counter() + 10.0
        while (sum(st.finalized for st in service._streams.values()) < 4
               and time.perf_counter() < deadline):
            time.sleep(0.01)
        service.cancel()
        report = service.wait()
        assert report.cancelled
        assert report.frames_total >= 4
        self.assert_balanced(pool.stats())
        assert threading.active_count() == before

    def test_close_before_start_releases_streams(self):
        """Leaving the with-block without serving must still release
        every added stream's session and source."""
        source = _ClosableSource(n=5)
        with FusionService(pool={"neon": 1}) as service:
            service.add_stream("s", config=config(), source=source,
                               frames=5)
        assert source.closed
        assert service._streams["s"].session._closed

    def test_context_manager_close_cancels_and_joins(self):
        before = threading.active_count()
        pool = EnginePool(POOL)
        with mixed_service(frames=None, pool=pool) as service:
            service.start()
            time.sleep(0.05)
        self.assert_balanced(pool.stats())
        assert threading.active_count() == before

    def test_closing_a_source_mid_serve_raises(self):
        source = _ClosableSource(n=10_000)
        pool = EnginePool({"neon": 1})
        service = FusionService(pool=pool)
        service.add_stream("s", config=config(), source=source)
        service.start()
        time.sleep(0.05)
        source.close()
        with pytest.raises(FusionError, match="closed"):
            service.wait()
        self.assert_balanced(pool.stats())


# ----------------------------------------------------------------------
class TestServiceReport:
    def test_aggregate_energy_equals_per_stream_sums(self):
        report = mixed_service(frames=5).serve()
        by_stream = report.energy_mj_by_stream
        assert set(by_stream) == {name for name, _, _ in MIXED_WORKLOAD}
        assert report.energy_mj_total == pytest.approx(
            sum(by_stream.values()))
        for name, _, _ in MIXED_WORKLOAD:
            assert by_stream[name] == pytest.approx(
                report.streams[name].model_millijoules_total)
            assert by_stream[name] > 0

    def test_per_stream_reports_match_solo_accounting(self):
        report = mixed_service(frames=5).serve()
        for name, overrides, seed in MIXED_WORKLOAD:
            with FusionSession(config(**overrides)) as session:
                solo = session.run(5, source=SyntheticSource(seed=seed))
            served = report.streams[name]
            assert served.model_millijoules_total == pytest.approx(
                solo.model_millijoules_total)
            assert served.engine_usage == solo.engine_usage
            assert served.actions == solo.actions

    def test_report_shapes_and_json(self):
        report = mixed_service(frames=4).serve()
        assert report.frames_total == 16
        assert report.aggregate_fps > 0
        as_dict = report.as_dict()
        assert set(as_dict["streams"]) == set(report.streams)
        assert as_dict["pool"]["granted"] == as_dict["pool"]["released"]
        import json
        json.dumps(as_dict)  # must be JSON-clean for the CLI/bench
        text = report.describe()
        assert "engine occupancy" in text
        for name, _, _ in MIXED_WORKLOAD:
            assert name in text

    def test_energy_fair_scheduling_charges_by_plan_cost(self):
        report = mixed_service(frames=4).serve()
        for name, _, _ in MIXED_WORKLOAD:
            entry = report.scheduler[name]
            assert entry["dispatched"] == 4
            assert entry["est_mj_per_frame"] > 0
            assert entry["charged_mj"] == pytest.approx(
                4 * entry["est_mj_per_frame"])

    def test_on_result_callback_sees_frames_in_order(self):
        seen = []
        service = FusionService(pool={"neon": 1})
        service.add_stream("s", config=config(),
                           source=SyntheticSource(seed=4), frames=5,
                           on_result=lambda r: seen.append(r.index))
        service.serve()
        assert seen == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
class TestServiceValidation:
    def test_duplicate_stream_name_rejected(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("s", config=config(),
                           source=SyntheticSource(seed=1), frames=1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            service.add_stream("s", config=config(),
                               source=SyntheticSource(seed=2), frames=1)

    def test_stream_engine_must_be_pooled(self):
        service = FusionService(pool={"neon": 1})
        with pytest.raises(ConfigurationError, match="pool"):
            service.add_stream("s", config=config(engine="fpga"),
                               source=SyntheticSource(seed=1), frames=1)

    def test_online_stream_needs_every_probe_engine(self):
        service = FusionService(pool={"neon": 1, "fpga": 1})
        with pytest.raises(ConfigurationError, match="arm"):
            service.add_stream("s", config=config(engine="online"),
                               source=SyntheticSource(seed=1), frames=1)

    def test_engine_team_config_not_servable(self):
        team_config = config(executor="hetero",
                             engine_team=("fpga", "neon"))
        service = FusionService(pool=POOL)
        with pytest.raises(ConfigurationError, match="engine_team"):
            service.add_stream("s", config=team_config,
                               source=SyntheticSource(seed=1), frames=1)

    @pytest.mark.parametrize("kwargs", [
        dict(frames=0), dict(priority=0.0), dict(priority=-1.0),
        dict(batch_frames=0),
    ])
    def test_bad_stream_parameters_rejected(self, kwargs):
        service = FusionService(pool={"neon": 1})
        with pytest.raises(ConfigurationError):
            service.add_stream("s", config=config(),
                               source=SyntheticSource(seed=1), **kwargs)

    def test_missing_source_rejected(self):
        service = FusionService(pool={"neon": 1})
        with pytest.raises(ConfigurationError, match="source"):
            service.add_stream("s", config=config())

    def test_service_is_one_shot(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("s", config=config(),
                           source=SyntheticSource(seed=1), frames=1)
        service.serve()
        with pytest.raises(FusionError, match="one"):
            service.start()

    def test_second_start_while_running_raises(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("s", config=config(),
                           source=SyntheticSource(seed=1), frames=2)
        service.start()
        before = threading.active_count()
        with pytest.raises(FusionError, match="already started"):
            service.start()
        # the failed start spawned no duplicate worker threads
        assert threading.active_count() == before
        service.wait()

    def test_start_after_close_raises(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("s", config=config(),
                           source=SyntheticSource(seed=1), frames=1)
        service.close()
        with pytest.raises(FusionError, match="closed"):
            service.start()

    def test_close_is_idempotent(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("s", config=config(),
                           source=SyntheticSource(seed=1), frames=1)
        service.serve()
        service.close()
        service.close()  # second close is a no-op, never raises

    def test_empty_service_cannot_start(self):
        with pytest.raises(ConfigurationError, match="no streams"):
            FusionService(pool={"neon": 1}).serve()

    def test_no_streams_added_after_start(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("s", config=config(),
                           source=SyntheticSource(seed=1), frames=1)
        service.start()
        with pytest.raises(ConfigurationError, match="started"):
            service.add_stream("t", config=config(),
                               source=SyntheticSource(seed=2), frames=1)
        service.wait()

    def test_source_exhaustion_before_frames_limit(self):
        service = FusionService(pool={"neon": 1})
        service.add_stream("s", config=config(),
                           source=_ClosableSource(n=3), frames=10)
        report = service.serve()
        assert report.streams["s"].frames == 3
