"""Section VII of the paper, claim by claim, against the model.

Each test quotes the claim it checks.  Tolerances are the reproduction
bands recorded in EXPERIMENTS.md: headline percentages within a few
points, crossovers within the windows the paper states.  One deviation
is expected and documented: the paper puts the *inverse* crossover past
40x40 while also reporting -60.6 % at 88x72, which no overhead+
throughput cost model can satisfy simultaneously; we reproduce the
-60.6 % anchor and the crossover lands at 38-39 px.
"""

import numpy as np
import pytest

from repro.hw.arm import ArmEngine
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine
from repro.hw.power import PowerModel
from repro.types import FrameShape

FULL = FrameShape(88, 72)
SMALL = FrameShape(32, 24)


@pytest.fixture(scope="module")
def engines():
    return ArmEngine(), NeonEngine(), FpgaEngine()


@pytest.fixture(scope="module")
def power():
    return PowerModel()


class TestForwardTransform:
    def test_fpga_saves_55_6_percent_at_full_frame(self, engines):
        """'a performance enhancement ... of 55.6% when using the FPGA
        ... to forward transform the full frames (88x72 pixels)'"""
        arm, _, fpga = engines
        gain = 1 - fpga.forward_stage_time(FULL) / arm.forward_stage_time(FULL)
        assert abs(gain - 0.556) < 0.02

    def test_neon_saves_10_percent_at_full_frame(self, engines):
        """'a performance enhancement of 10% when using the NEON engine'"""
        arm, neon, _ = engines
        gain = 1 - neon.forward_stage_time(FULL) / arm.forward_stage_time(FULL)
        assert abs(gain - 0.10) < 0.02

    def test_fpga_36_4_percent_worse_than_neon_at_32x24(self, engines):
        """'for smaller extractions ... at 32x24 pixels, execution of the
        forward DT-CWT by FPGA caused a 36.4% performance degradation
        compared to ... the NEON engine'"""
        _, neon, fpga = engines
        penalty = (fpga.forward_stage_time(SMALL)
                   / neon.forward_stage_time(SMALL)) - 1.0
        assert abs(penalty - 0.364) < 0.04

    def test_fpga_slower_than_arm_at_32x24(self, engines):
        """'The forward transform using FPGA at this point took longer
        than that using the ARM processor'"""
        arm, _, fpga = engines
        assert fpga.forward_stage_time(SMALL) > arm.forward_stage_time(SMALL)

    def test_crossover_between_35_and_40(self, engines):
        """'the breaking point at frame size between 35x35 and 40x40'"""
        _, neon, fpga = engines
        assert (fpga.forward_stage_time(FrameShape(35, 35))
                > neon.forward_stage_time(FrameShape(35, 35)))
        assert (fpga.forward_stage_time(FrameShape(40, 40))
                < neon.forward_stage_time(FrameShape(40, 40)))


class TestInverseTransform:
    def test_fpga_saves_60_6_percent_at_full_frame(self, engines):
        """'execution using the FPGA ... provided 60.6% performance
        enhancement' (inverse, 88x72)"""
        arm, _, fpga = engines
        gain = 1 - fpga.inverse_stage_time(FULL) / arm.inverse_stage_time(FULL)
        assert abs(gain - 0.606) < 0.03

    def test_neon_saves_16_percent_at_full_frame(self, engines):
        arm, neon, _ = engines
        gain = 1 - neon.inverse_stage_time(FULL) / arm.inverse_stage_time(FULL)
        assert abs(gain - 0.16) < 0.02

    def test_fpga_loses_at_35x35_and_below(self, engines):
        """'The FPGA still provided worse performance than the NEON
        engine at frame size 35x35 and 32x24 pixels'"""
        _, neon, fpga = engines
        for shape in (FrameShape(35, 35), FrameShape(32, 24)):
            assert (fpga.inverse_stage_time(shape)
                    > neon.inverse_stage_time(shape))


class TestTotalTime:
    def test_fpga_total_gain_near_48_percent(self, engines):
        """'At full frame size ..., the FPGA provided 48.1% performance
        enhancement' (total, within the model's consistency band)"""
        arm, _, fpga = engines
        gain = 1 - (fpga.frame_time(FULL).total_s
                    / arm.frame_time(FULL).total_s)
        assert 0.44 < gain < 0.54

    def test_neon_total_gain_near_8_percent(self, engines):
        arm, neon, _ = engines
        gain = 1 - (neon.frame_time(FULL).total_s
                    / arm.frame_time(FULL).total_s)
        assert 0.06 < gain < 0.13

    def test_fpga_beats_neon_only_beyond_40(self, engines):
        """'The ARM+FPGA execution outperformed the ARM+NEON only when
        the frame size was increased beyond 40x40 pixels' — paper sizes."""
        _, neon, fpga = engines
        assert (fpga.frame_time(FrameShape(35, 35)).total_s
                > neon.frame_time(FrameShape(35, 35)).total_s)
        assert (fpga.frame_time(FrameShape(64, 48)).total_s
                < neon.frame_time(FrameShape(64, 48)).total_s)


class TestPowerAndEnergy:
    def test_arm_neon_equal_power(self, power):
        """'Fusing using only the ARM processor consumes approximately
        the same power as using ARM+NEON.'"""
        assert np.isclose(power.power_w("arm"), power.power_w("neon"))

    def test_fpga_power_up_19_2_mw_3_6_percent(self, power):
        """'fusing using ARM+FPGA consumes 3.6% more power (19.2mW)'"""
        delta = power.fpga_power_increase_w()
        assert np.isclose(delta, 0.0192, atol=5e-4)
        assert abs(delta / power.power_w("arm") - 0.036) < 0.002

    def test_fpga_energy_saving_near_46_percent(self, engines, power):
        """'ARM+FPGA saves 46.3% of total energy consumption when fusing
        images with full frame size'"""
        arm, _, fpga = engines
        e_arm = arm.frame_time(FULL).total_s * power.power_w("arm")
        e_fpga = fpga.frame_time(FULL).total_s * power.power_w("fpga")
        saving = 1 - e_fpga / e_arm
        assert 0.42 < saving < 0.52

    def test_neon_energy_saving_near_8_percent(self, engines, power):
        arm, neon, _ = engines
        e_arm = arm.frame_time(FULL).total_s * power.power_w("arm")
        e_neon = neon.frame_time(FULL).total_s * power.power_w("neon")
        assert 0.05 < 1 - e_neon / e_arm < 0.13

    def test_energy_crossover_between_40x40_and_64x48(self, engines, power):
        """'The breaking point exists at the frame size between 40x40
        and 64x48 pixels' (energy, ARM+FPGA vs ARM+NEON)"""
        _, neon, fpga = engines

        def energy(engine, shape):
            return (engine.frame_time(shape).total_s
                    * power.power_w(engine.power_mode))

        assert energy(fpga, FrameShape(40, 40)) > energy(neon, FrameShape(40, 40))
        assert energy(fpga, FrameShape(64, 48)) < energy(neon, FrameShape(64, 48))

    def test_bigger_frames_widen_the_fpga_energy_advantage(self, engines, power):
        """'starting from the breaking point, the larger the frame size
        ..., the more energy efficient is the ARM+FPGA processing mode'"""
        _, neon, fpga = engines
        ratios = []
        for shape in (FrameShape(64, 48), FrameShape(88, 72),
                      FrameShape(128, 96)):
            e_fpga = fpga.frame_time(shape).total_s * power.power_w("fpga")
            e_neon = neon.frame_time(shape).total_s * power.power_w("neon")
            ratios.append(e_fpga / e_neon)
        assert ratios[0] > ratios[1] > ratios[2]


class TestAdaptiveConclusion:
    def test_adaptive_matches_best_everywhere(self):
        """'an adaptive system that intelligently selects between the
        SIMD engine and the FPGA achieves the most energy and performance
        efficiency point'"""
        from repro.core.adaptive import CostModelScheduler
        from repro.types import PAPER_FRAME_SIZES
        scheduler = CostModelScheduler(objective="time")
        for shape in PAPER_FRAME_SIZES:
            decision = scheduler.choose(shape)
            assert decision.alternatives[decision.engine.name] == min(
                decision.alternatives.values())
