"""All three engines must compute the same fusion (they differ only in
where the arithmetic runs — the paper's Figs. 8/9 presume this)."""

import numpy as np
import pytest

from repro.core.fusion import ImageFusion
from repro.hw.arm import ArmEngine
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine


@pytest.fixture(scope="module")
def frame_pair():
    rng = np.random.default_rng(99)
    yy, xx = np.mgrid[0:24, 0:32]
    visible = 120 + 30 * np.sin(xx / 3.0) + rng.normal(0, 2, (24, 32))
    thermal = 90 + 110 * np.exp(-((xx - 20) ** 2 + (yy - 12) ** 2) / 30.0)
    return visible.astype(np.float32), thermal.astype(np.float32)


class TestPyramidEquivalence:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_forward_pyramids_match(self, frame_pair, levels):
        visible, _ = frame_pair
        pyramids = {}
        for engine in (ArmEngine(), NeonEngine(), FpgaEngine()):
            pyramids[engine.name] = engine.transform(levels).forward(visible)
        ref = pyramids["arm"]
        for name in ("neon", "fpga"):
            other = pyramids[name]
            for level in range(levels):
                assert np.allclose(ref.highpasses[level],
                                   other.highpasses[level], atol=2e-4), \
                    f"{name} level {level + 1} diverges from arm"
            assert np.allclose(ref.lowpass, other.lowpass, atol=2e-4)


class TestFusedFrameEquivalence:
    def test_full_fusion_identical_across_engines(self, frame_pair):
        visible, thermal = frame_pair
        outputs = {}
        for engine in (ArmEngine(), NeonEngine(), FpgaEngine()):
            fusion = ImageFusion(transform=engine.transform(levels=2))
            outputs[engine.name] = fusion.fuse(visible, thermal).fused
        assert np.allclose(outputs["arm"], outputs["neon"], atol=1e-4)
        assert np.allclose(outputs["arm"], outputs["fpga"], atol=2e-3)

    def test_fpga_roundtrip_error_bounded(self, frame_pair):
        """float32 + HLS datapath: reconstruction stays within sensor
        noise (the hardware is usable as a drop-in)."""
        visible, _ = frame_pair
        transform = FpgaEngine().transform(levels=3)
        rec = transform.inverse(transform.forward(visible))
        assert np.max(np.abs(rec - visible)) < 1e-2
