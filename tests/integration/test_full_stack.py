"""Full-stack integration: faults, recording, and the advanced session."""

import numpy as np
import pytest

from repro.hw.neon import NeonEngine
from repro.types import FrameShape
from repro.video.bt656 import Bt656Decoder
from repro.video.faults import DropoutChannel, NoisyByteChannel, corrupt_stream
from repro.video.pipeline import FusionPipeline
from repro.video.recorder import PgmSequenceSource, StreamRecorder
from repro.video.scene import SyntheticScene
from repro.video.thermal import ThermalCameraSimulator


class TestFaultRecovery:
    def test_pipeline_survives_transient_channel_faults(self):
        """Decode -> scale -> FIFO -> fuse keeps producing output frames
        while the thermal link is noisy, and error counters tell the
        operator what happened."""
        scene = SyntheticScene(width=96, height=80, seed=12)
        camera = ThermalCameraSimulator(scene)
        decoder = Bt656Decoder(camera.bt656_config)
        noise = NoisyByteChannel(bit_error_rate=5e-5, seed=1)
        dropout = DropoutChannel(dropout_rate=0.001, burst_bytes=64, seed=2)

        decoded_frames = 0
        for _ in range(8):
            stream = corrupt_stream(camera.capture_bt656(), [noise, dropout])
            decoded_frames += len(decoder.push_bytes(stream))

        assert decoded_frames >= 5     # most frames still arrive
        assert noise.stats.bits_flipped > 0
        # no exception escaped: resilience is the assertion

    def test_fused_output_quality_degrades_gracefully(self):
        """Mild channel noise must not destroy fusion quality."""
        from repro.core.fusion import fuse_images
        from repro.core.metrics import psnr
        scene = SyntheticScene(width=96, height=80, seed=12)
        camera = ThermalCameraSimulator(scene)
        visible = scene.render_visible(0.0)[:80, :96]

        clean_decoder = Bt656Decoder(camera.bt656_config)
        clean = clean_decoder.push_bytes(camera.capture_bt656())[0]

        noisy_cam = ThermalCameraSimulator(
            SyntheticScene(width=96, height=80, seed=12))
        channel = NoisyByteChannel(bit_error_rate=1e-5, seed=3)
        noisy_decoder = Bt656Decoder(noisy_cam.bt656_config)
        noisy = noisy_decoder.push_bytes(
            corrupt_stream(noisy_cam.capture_bt656(), [channel]))[0]

        thermal_clean = clean[::3, ::8].astype(float)[:80, :88]
        thermal_noisy = noisy[::3, ::8].astype(float)[:80, :88]
        vis = visible[: thermal_clean.shape[0], : thermal_clean.shape[1]]

        fused_clean = fuse_images(vis, thermal_clean, levels=2)
        fused_noisy = fuse_images(vis, thermal_noisy, levels=2)
        assert psnr(fused_clean, fused_noisy) > 25.0


class TestRecordReplay:
    def test_recorded_run_replays_identically(self, tmp_path):
        """Record a pipeline's fused output, play it back, and get the
        same frames — the reproducibility workflow."""
        scene = SyntheticScene(width=96, height=80, seed=13)
        pipeline = FusionPipeline(engine=NeonEngine(),
                                  fusion_shape=FrameShape(40, 40),
                                  levels=2, scene=scene)
        report = pipeline.run(3)
        with StreamRecorder(tmp_path / "session") as recorder:
            for record in report.records:
                recorder.write(record.frame)

        playback = PgmSequenceSource(tmp_path / "session")
        assert len(playback) == 3
        for record in report.records:
            frame = playback.capture()
            assert np.array_equal(frame.pixels, record.frame.pixels)

    def test_playback_drives_further_processing(self, tmp_path, rng):
        """A played-back stream is a first-class frame source."""
        frames = [rng.integers(0, 255, (32, 32)).astype(np.uint8)
                  for _ in range(4)]
        with StreamRecorder(tmp_path / "raw") as recorder:
            for frame in frames:
                recorder.write(frame)
        source = PgmSequenceSource(tmp_path / "raw", loop=True)
        total = sum(float(source.capture().pixels.mean()) for _ in range(8))
        assert total > 0  # looped twice without exhausting


class TestSessionIntegration:
    def test_session_handles_monitor_fallback(self):
        """If the scene's thermal channel dies mid-session the monitor
        flips the action; the session keeps producing frames."""
        from repro.session import FusionConfig, FusionSession

        session = FusionSession(FusionConfig(
            engine="online", fusion_shape=FrameShape(48, 40), levels=2,
            scene=SyntheticScene(width=96, height=80, seed=5),
            monitor=True, quality_metrics=False,
        ))
        report = session.run(4)
        assert report.frames == 4
        assert report.actions.get("fuse", 0) >= 3

    def test_session_is_deterministic_given_seed(self):
        from repro.session import FusionConfig, FusionSession

        def run():
            session = FusionSession(FusionConfig(
                engine="online", fusion_shape=FrameShape(48, 40), levels=2,
                scene=SyntheticScene(width=96, height=80, seed=21),
                quality_metrics=False,
            ))
            return session.run(4)

        first = run()
        second = run()
        assert first.engine_usage == second.engine_usage
        assert np.isclose(first.telemetry["millijoules_total"],
                          second.telemetry["millijoules_total"])
