"""N-way fusion parity: the acceptance bars of the N-source issue.

Two families of guarantees, both verified by hash:

* **N=2 is untouched** — the pair pipeline (core fuse, the serial
  session stream, the canonical graph's structure) is bitwise/
  structurally identical to what the repository produced before
  N-way generalization.  The pixel and structure hashes below were
  captured at that commit; any drift is a regression, not a retune.
* **N=3 is deterministic** — a visible+thermal+depth triple fuses
  bitwise-identically across every executor, worker count and shard
  count, and reproduces the same bytes run-to-run.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.core.fusion import ImageFusion
from repro.graph import FusionGraph
from repro.serve import ShardedFusionService
from repro.session import FusionConfig, FusionSession, SyntheticSource
from repro.types import FrameShape

#: hashes captured at the pre-N-way commit (pair pipeline) and at the
#: introduction of N-way (triple pipeline, its own anchor going
#: forward).  Pixel hashes cover float64 NumPy arithmetic and are
#: stable on the CI platform; structure hashes are platform-free.
GOLDEN = {
    "core_fuse_pair":
        "11b92791a495a40769b8afdf1b7308c24221d57683c8be4bbb4d1c0942554b40",
    "session_stream_pair":
        "3c0e534f52cfc68fdd61afd348c16eb18502bb14f3b92d597b6b645361a935b0",
    "graph_canonical":
        "c8f07f935dd95c06dc4eb43b29455827b8e3d61a3a79b54bdf84f1c3afe5099c",
    "graph_canonical_registration":
        "334e3ff75b2839165590e9b94d60f894613afdf15e806e6173c121dbc019fc23",
    "session_stream_triple":
        "acccec3c9f1f41eadde6e004c230cb5788199c749d0014508db974b4c4cde323",
}

TRIPLE = ("visible", "thermal", "depth")


def graph_signature(graph: FusionGraph) -> str:
    """Structural hash of a graph: names, kinds, state, placement,
    batchability and edges in topological order."""
    material = [[st.name, st.kind, st.state, st.placement, st.batchable,
                 list(st.after)]
                for st in (graph.stage(n) for n in graph.topo_order())]
    return hashlib.sha256(
        json.dumps(material).encode("utf-8")).hexdigest()


def stream_hash(overrides, modalities=("visible", "thermal"),
                limit=4, source_seed=7) -> str:
    """sha256 over the fused pixel bytes of a short synthetic stream."""
    defaults = dict(engine="arm", executor="serial",
                    fusion_shape=FrameShape(40, 48), levels=2, seed=7,
                    quality_metrics=False)
    defaults.update(overrides)
    config = FusionConfig(**defaults)
    source = SyntheticSource(seed=source_seed, limit=limit,
                             modalities=tuple(modalities))
    digest = hashlib.sha256()
    with FusionSession(config) as session:
        for result in session.stream(source):
            digest.update(result.frame.pixels.tobytes())
    return digest.hexdigest()


class TestPairUnchanged:
    """N=2 must be bitwise/structurally identical to the pre-N-way
    repository."""

    def test_core_fuse_matches_head_golden(self):
        rng = np.random.default_rng(7)
        visible = rng.uniform(0.0, 255.0, (48, 40))
        thermal = rng.uniform(0.0, 255.0, (48, 40))
        fused = ImageFusion(levels=2).fuse(visible, thermal).fused
        assert hashlib.sha256(fused.tobytes()).hexdigest() \
            == GOLDEN["core_fuse_pair"]

    def test_session_stream_matches_head_golden(self):
        assert stream_hash({}) == GOLDEN["session_stream_pair"]

    def test_canonical_graph_structure_matches_head(self):
        assert graph_signature(FusionGraph.canonical()) \
            == GOLDEN["graph_canonical"]
        assert graph_signature(FusionGraph.canonical(registration=True)) \
            == GOLDEN["graph_canonical_registration"]

    def test_n2_canonical_graph_is_the_default_graph(self):
        assert graph_signature(FusionGraph.canonical(n_sources=2)) \
            == graph_signature(FusionGraph.canonical())


class TestTripleParity:
    """A three-source stream is bitwise-reproducible everywhere."""

    def test_serial_matches_triple_golden(self):
        assert stream_hash({"n_sources": 3}, modalities=TRIPLE) \
            == GOLDEN["session_stream_triple"]

    @pytest.mark.parametrize("overrides", [
        dict(executor="pipeline", workers=2),
        dict(executor="pipeline", workers=4),
        dict(executor="batch", batch_size=2),
        dict(executor="batch", batch_size=4),
        dict(executor="hetero", workers=2),
        dict(executor="hetero", workers=4),
    ], ids=lambda o: f"{o['executor']}-{o.get('workers', o.get('batch_size'))}")
    def test_every_executor_matches_serial(self, overrides):
        overrides = dict(overrides, n_sources=3)
        assert stream_hash(overrides, modalities=TRIPLE) \
            == GOLDEN["session_stream_triple"]

    def test_core_batch_matches_single_triple(self):
        rng = np.random.default_rng(11)
        stacks = [rng.uniform(0.0, 255.0, (3, 40, 48)) for _ in range(3)]
        fusion = ImageFusion(levels=2)
        batch = fusion.fuse_batch(*stacks)
        for i in range(3):
            single = fusion.fuse(*(stack[i] for stack in stacks))
            assert np.array_equal(batch.fused[i], single.fused)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_triple_matches_solo(self, shards):
        config = FusionConfig(engine="neon",
                              fusion_shape=FrameShape(40, 40), levels=2,
                              seed=5, quality_metrics=False,
                              keep_records=True, n_sources=3)

        def source():
            return SyntheticSource(seed=5, modalities=TRIPLE)

        solo = hashlib.sha256()
        with FusionSession(config) as session:
            for result in session.stream(source(), limit=6):
                solo.update(result.frame.pixels.tobytes())

        service = ShardedFusionService(
            shards=shards, pool={"arm": 1, "neon": 1, "fpga": 2},
            max_in_flight=8, stream_queue_depth=4,
            ring_slot_bytes=4 * 1024 * 1024)
        service.add_stream("triple", config=config, source=source(),
                           frames=6)
        report = service.serve()
        assert not report.errors
        records = sorted(report.streams["triple"].records,
                         key=lambda r: r.index)
        sharded = hashlib.sha256()
        for record in records:
            assert len(record.sources) == 3
            sharded.update(record.frame.pixels.tobytes())
        assert sharded.hexdigest() == solo.hexdigest()
