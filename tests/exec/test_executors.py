"""The pluggable execution layer: determinism, lifecycle, telemetry."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    ExecStats,
    HeterogeneousExecutor,
    PipelineExecutor,
    SerialExecutor,
    executor_names,
    make_executor,
    register_executor,
)
from repro.exec.base import FrameProcessor
from repro.hw.registry import create_engine_pool
from repro.session import (
    FramePair,
    FrameSource,
    FusionConfig,
    FusionSession,
    SyntheticSource,
)
from repro.types import FrameShape

SMALL = FrameShape(40, 40)
EXECUTORS = ("serial", "pipeline", "hetero")


def small_config(**overrides):
    defaults = dict(engine="neon", fusion_shape=SMALL, levels=2, seed=5,
                    quality_metrics=False)
    defaults.update(overrides)
    return FusionConfig(**defaults)


def fuse_stream(executor, n=6, **overrides):
    """Fresh session + fresh seeded source -> list of results."""
    with FusionSession(small_config(executor=executor, **overrides)) as s:
        return list(s.stream(SyntheticSource(seed=5), limit=n))


# ----------------------------------------------------------------------
class TestExecutorRegistry:
    def test_builtin_names(self):
        assert set(executor_names()) >= set(EXECUTORS)

    def test_make_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_executor("serial", SerialExecutor)

    def test_replace_allows_override_and_restore(self):
        register_executor("serial", PipelineExecutor, replace=True)
        try:
            assert isinstance(make_executor("serial"), PipelineExecutor)
        finally:
            register_executor("serial", SerialExecutor, replace=True)

    def test_factories_build_named_executors(self):
        for name, cls in (("serial", SerialExecutor),
                          ("pipeline", PipelineExecutor),
                          ("hetero", HeterogeneousExecutor)):
            executor = make_executor(name, workers=2, queue_depth=3)
            assert isinstance(executor, cls)
            assert executor.stats.executor == name

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_executors_are_one_shot(self, executor):
        """A second run() on a spent instance raises loudly instead of
        silently yielding wrong (empty/truncated) results."""
        instance = make_executor(executor, workers=2, queue_depth=2)
        first = list(instance.run(_SleepyProcessor(), iter(range(3)),
                                  limit=3))
        assert first == [0, 1, 2]
        with pytest.raises(ConfigurationError, match="one"):
            instance.run(_SleepyProcessor(), iter(range(3)), limit=3)


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(executor="warp"),
        dict(workers=0),
        dict(queue_depth=0),
        dict(executor="hetero", engine_team=()),
        dict(executor="hetero", engine_team=("neon", "abacus")),
        dict(executor="hetero", engine_team="neon"),
        dict(executor="serial", engine_team=("neon",)),
        # temporal fusion is sequential; a co-scheduled team would be
        # silently bypassed, so the combination is rejected loudly
        dict(executor="hetero", engine_team=("fpga", "neon"),
             temporal=True),
    ])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            small_config(**bad)

    def test_engine_team_coerced_to_tuple(self):
        config = small_config(executor="hetero",
                              engine_team=["fpga", "neon"])
        assert config.engine_team == ("fpga", "neon")

    def test_mutated_config_conflicts_raise_fusion_error(self):
        """Field validation runs at construction; combinations a
        mutated config smuggles past it fail loudly at drive time with
        a FusionError naming both knobs, not deep in an executor."""
        from repro.errors import FusionError
        with FusionSession(small_config(executor="batch")) as s:
            s.config.batch_size = 0
            with pytest.raises(FusionError, match="batch_size"):
                s.run(1)
        with FusionSession(small_config()) as s:
            s.config.workers = 0
            with pytest.raises(FusionError, match="workers"):
                s.run(1, executor="pipeline")
            with pytest.raises(FusionError, match="workers"):
                list(s.stream(SyntheticSource(seed=5), limit=1,
                              executor="hetero"))
        with FusionSession(small_config()) as s:
            s.config.queue_depth = 0
            with pytest.raises(FusionError, match="queue_depth"):
                s.run(1, executor="pipeline")
            # the serial path needs neither knob and still runs
            assert s.run(1).frames == 1

    def test_per_call_override_conflicts_raise_fusion_error(self):
        from repro.errors import FusionError
        config = small_config(executor="hetero",
                              engine_team=("fpga", "neon"))
        with FusionSession(config) as s:
            # with_overrides drops the team for non-hetero overrides,
            # but a hand-mutated executor field must not slip through
            s.config.executor = "pipeline"
            with pytest.raises(FusionError, match="engine_team"):
                s.run(1)

    def test_engine_pool_builds_independent_instances(self):
        pool = create_engine_pool("neon", 3)
        assert len(pool) == 3
        assert len({id(e) for e in pool}) == 3
        assert all(e.name == "neon" for e in pool)
        with pytest.raises(ConfigurationError):
            create_engine_pool("neon", 0)


# ----------------------------------------------------------------------
class TestDeterminism:
    """Fixed seed => every executor produces bitwise-identical frames
    and identical modelled accounting (the paper's numbers must not
    depend on how the dataflow is scheduled)."""

    @pytest.mark.parametrize("features", [
        {},
        dict(engine="online"),
        dict(engine="adaptive"),
        dict(temporal=True),
        dict(registration=True, monitor=True),
    ])
    def test_concurrent_matches_serial(self, features,
                                       assert_bitwise_parity):
        reference = fuse_stream("serial", **features)
        for executor in ("pipeline", "hetero"):
            results = fuse_stream(executor, **features)
            assert_bitwise_parity(reference, results, label=executor)

    def test_reports_aggregate_identically(self):
        reports = {}
        for executor in EXECUTORS:
            with FusionSession(small_config(executor=executor,
                                            quality_metrics=True)) as s:
                reports[executor] = s.run(5).as_dict()
        ref = reports["serial"]
        for executor in ("pipeline", "hetero"):
            got = reports[executor]
            # modelled quantities and quality are exactly equal; only
            # the measured wall-clock blocks may differ
            for key in ("frames", "engine_usage", "actions", "model_fps",
                        "millijoules_per_frame", "quality"):
                assert got[key] == ref[key], key

    def test_two_runs_continue_shared_source_identically(self):
        """A bounded concurrent drive must not read ahead of its limit
        on the session's persistent capture chain."""
        frames = {}
        for executor in EXECUTORS:
            with FusionSession(small_config(executor=executor)) as s:
                reports = [s.run(3), s.run(3)]
            frames[executor] = [rec.frame.pixels
                                for r in reports for rec in r.records]
            assert [rec.index for r in reports for rec in r.records] \
                == list(range(6))
        for executor in ("pipeline", "hetero"):
            assert all(np.array_equal(a, b) for a, b
                       in zip(frames["serial"], frames[executor]))

    def test_run_accepts_per_call_executor_override(self):
        """run(executor=...) drives one batch with another strategy
        without touching the config — and still matches bitwise."""
        frames = {}
        for executor in EXECUTORS:
            with FusionSession(small_config()) as s:
                assert s.config.executor == "serial"
                report = s.run(4, executor=executor)
            assert report.throughput["executor"] == executor
            frames[executor] = [rec.frame.pixels for rec in report.records]
        for executor in ("pipeline", "hetero"):
            assert all(np.array_equal(a, b) for a, b
                       in zip(frames["serial"], frames[executor]))
        with FusionSession(small_config()) as s:
            with pytest.raises(ConfigurationError):
                s.run(1, executor="warp")

    def test_override_away_from_hetero_drops_engine_team(self):
        """A hetero+team config can still drive one batch serially."""
        config = small_config(executor="hetero",
                              engine_team=("fpga", "neon"))
        with FusionSession(config) as s:
            report = s.run(2, executor="serial")
        assert report.frames == 2
        assert report.throughput["executor"] == "serial"

    def test_mixed_team_attributes_stages(self):
        results = fuse_stream("hetero", engine_team=("fpga", "neon"))
        stages = results[0].frame.metadata["stages"]
        assert set(stages) == {"visible", "thermal", "fuse"}
        assert set(stages.values()) <= {"fpga", "neon"}
        # co-scheduled accounting: per-stage modelled costs, summed
        assert all(r.model_seconds > 0 for r in results)
        # mixed teams are still deterministic run-to-run
        again = fuse_stream("hetero", engine_team=("fpga", "neon"))
        for ref, got in zip(results, again):
            assert np.array_equal(ref.frame.pixels, got.frame.pixels)
            assert ref.model_millijoules == got.model_millijoules


# ----------------------------------------------------------------------
class _ClosableSource(FrameSource):
    def __init__(self, n=100, fail_at=None):
        self.n = n
        self.fail_at = fail_at
        self.closed = False

    def frames(self):
        for i in range(self.n):
            if self.fail_at is not None and i >= self.fail_at:
                raise RuntimeError("sensor died")
            yield FramePair(visible=np.full((40, 40), 10.0 + i),
                            thermal=np.full((40, 40), 200.0 - i),
                            timestamp_s=i / 25.0, index=i)

    def close(self):
        self.closed = True


class TestLifecycle:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_worker_threads_join_after_stream(self, executor):
        before = threading.active_count()
        fuse_stream(executor, n=4)
        assert threading.active_count() == before

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_source_closed_on_normal_exit(self, executor):
        source = _ClosableSource(n=3)
        with FusionSession(small_config(executor=executor)) as s:
            results = list(s.stream(source))
        assert len(results) == 3
        assert source.closed

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_source_closed_and_threads_joined_on_error(self, executor):
        before = threading.active_count()
        source = _ClosableSource(fail_at=2)
        session = FusionSession(small_config(executor=executor))
        with pytest.raises(RuntimeError, match="sensor died"):
            list(session.stream(source))
        assert source.closed
        assert threading.active_count() == before

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_early_limit_exit_cleans_up(self, executor):
        before = threading.active_count()
        source = _ClosableSource(n=100)
        with FusionSession(small_config(executor=executor)) as s:
            results = list(s.stream(source, limit=2))
        assert len(results) == 2
        assert source.closed
        assert threading.active_count() == before

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_abandoned_stream_cleans_up(self, executor):
        """The consumer walking away mid-stream must join workers."""
        before = threading.active_count()
        source = _ClosableSource(n=100)
        with FusionSession(small_config(executor=executor)) as s:
            for i, _ in enumerate(s.stream(source)):
                if i >= 1:
                    break
        assert source.closed
        assert threading.active_count() == before

    @pytest.mark.parametrize("executor", ("pipeline", "hetero"))
    def test_source_closed_mid_stream_raises_not_deadlocks(self, executor):
        """Regression: closing a source while a concurrent executor is
        still capturing from it used to leave the capture thread
        pulling from a dead source against the bounded queues; it must
        surface as a FusionError on the consumer instead."""
        from repro.errors import FusionError
        before = threading.active_count()
        source = _ClosableSource(n=10_000)
        session = FusionSession(small_config(executor=executor))
        stream = session.stream(source)
        next(stream)
        source.close()  # mid-iteration: the drive is still running
        with pytest.raises(FusionError, match="closed"):
            for _ in stream:
                pass
        assert threading.active_count() == before

    @pytest.mark.parametrize("executor", ("serial", "batch"))
    def test_source_closed_mid_stream_raises_inline_executors(self,
                                                              executor):
        """The inline executors hit the same guard on their next pull."""
        from repro.errors import FusionError
        source = _ClosableSource(n=10_000)
        with FusionSession(small_config(executor=executor,
                                        batch_size=2)) as s:
            stream = s.stream(source)
            next(stream)
            source.close()
            with pytest.raises(FusionError, match="closed"):
                for _ in stream:
                    pass

    def test_plain_generator_is_closed_with_its_stream(self):
        """Documented ownership: a bare generator belongs to the
        stream that consumed it, even on a clean limit exit."""
        cleaned = []

        def pairs():
            try:
                for i in range(10):
                    yield (np.full((40, 40), float(i)),
                           np.full((40, 40), float(i)))
            finally:
                cleaned.append(True)

        with FusionSession(small_config()) as s:
            assert len(list(s.stream(pairs(), limit=2))) == 2
        assert cleaned == [True]

    def test_executors_receive_a_true_iterator(self):
        """The session hands executors a real Iterator (next() works,
        repeated islice continues instead of restarting the source) —
        the documented Executor.run contract an out-of-tree executor
        may rely on — that still advertises the source's closed flag."""
        import itertools

        from repro.exec import SerialExecutor, register_executor

        seen = {}

        class _ProbeExecutor(SerialExecutor):
            def run(self, processor, pairs, limit=None):
                seen["has_next"] = hasattr(pairs, "__next__")
                seen["closed"] = getattr(pairs, "closed", None)
                first = [processor.ingest(p, i) for i, p in
                         enumerate(itertools.islice(pairs, 2))]
                second = [processor.ingest(p, i + 2) for i, p in
                          enumerate(itertools.islice(pairs, 2))]
                for task in first + second:
                    for name in (*processor.parallel_stages(),
                                 *processor.mid_stages()):
                        processor.run_stage(name, task)
                    self.stats.frames += 1
                    yield processor.finalize(task)

        register_executor("probe", _ProbeExecutor)
        try:
            with FusionSession(small_config()) as s:
                results = list(s.stream(SyntheticSource(seed=5), limit=4,
                                        executor="probe"))
        finally:
            from repro.exec import _REGISTRY
            _REGISTRY.pop("probe", None)
        assert seen["has_next"] is True
        assert seen["closed"] is False
        # islice continued the stream: four distinct frame indices
        assert [r.index for r in results] == [0, 1, 2, 3]

    def test_frame_source_survives_streams(self):
        """FrameSource close defaults to a no-op, so the built-in
        sources remain reusable across bounded streams."""
        source = SyntheticSource(seed=5)
        with FusionSession(small_config()) as s:
            first = list(s.stream(source, limit=2))
            second = list(s.stream(source, limit=2))
        assert [r.index for r in first + second] == [0, 1, 2, 3]

    def test_source_closed_when_executor_construction_fails(self):
        source = _ClosableSource(n=3)
        session = FusionSession(small_config())
        with pytest.raises(ConfigurationError):
            list(session.stream(source, executor="warp"))
        assert source.closed

    def test_zero_frame_run_reports_zero_throughput(self):
        """A batch report never carries the previous batch's
        wall-clock numbers."""
        with FusionSession(small_config()) as s:
            first = s.run(3, source=_ClosableSource(n=3))
            assert first.throughput["frames"] == 3
            exhausted = _ClosableSource(n=0)
            with pytest.warns(RuntimeWarning, match="exhausted"):
                second = s.run(5, source=exhausted)
        assert second.frames == 0
        assert second.throughput["frames"] == 0
        assert second.wall_fps == 0.0

    def test_session_is_a_context_manager(self):
        session = FusionSession(small_config())
        with session as s:
            assert s is session
            s.run(1)
        session.close()  # idempotent

    def test_process_rejected_during_concurrent_stream(self):
        """process() mutates the same ordered state the capture thread
        is driving; the race is refused, not silently run."""
        vis = np.full((40, 40), 10.0)
        with FusionSession(small_config(executor="pipeline")) as s:
            it = s.stream(_ClosableSource(n=50))
            next(it)
            with pytest.raises(ConfigurationError, match="concurrent"):
                s.process(vis, vis)
            it.close()
            # once the stream is gone, process() works again
            assert s.process(vis, vis).frame.pixels.shape == (40, 40)

    def test_temporal_pipeline_spawns_no_forward_pool(self):
        """With a sequential fuse stage the pipeline has no forward
        jobs, so no pool threads or worker contexts exist."""
        with FusionSession(small_config(executor="pipeline",
                                        temporal=True)) as s:
            report = s.run(3)
        busy = report.throughput["stage_busy_s"]
        assert not any(name.startswith("forward") for name in busy)
        assert report.frames == 3

    def test_stage_error_propagates_from_worker(self):
        """A failure inside a worker thread surfaces to the caller."""
        class _Bad3D(FrameSource):
            def frames(self):
                yield FramePair(visible=np.zeros((4, 4, 3)),
                                thermal=np.zeros((4, 4)))
        session = FusionSession(small_config(executor="pipeline"))
        with pytest.raises(ConfigurationError, match="2-D"):
            list(session.stream(_Bad3D()))


# ----------------------------------------------------------------------
class TestThroughputTelemetry:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_report_carries_wall_clock_throughput(self, executor):
        with FusionSession(small_config(executor=executor)) as s:
            report = s.run(4)
        block = report.throughput
        assert block["executor"] == executor
        assert block["frames"] == 4
        assert block["wall_fps"] > 0
        assert report.wall_fps == block["wall_fps"]
        assert isinstance(block["stage_occupancy"], dict)
        assert 0.0 <= max(block["stage_occupancy"].values()) <= 1.0
        assert isinstance(block["queue_peak"], dict)
        assert block["steals"] >= 0
        assert "throughput" in report.as_dict()

    def test_pipeline_tracks_queue_depths_and_stage_busy(self):
        with FusionSession(small_config(executor="pipeline",
                                        queue_depth=2)) as s:
            report = s.run(5)
        block = report.throughput
        assert {"ingest", "fuse", "finalize"} <= set(block["stage_busy_s"])
        assert any(name.startswith("forward") for name
                   in block["stage_busy_s"])
        assert block["queue_peak"]["order"] <= 2
        assert block["queue_peak"]["done"] <= 2

    def test_hetero_reports_per_engine_workers(self):
        with FusionSession(small_config(executor="hetero", workers=2)) as s:
            report = s.run(4)
        worker_frames = report.throughput["worker_frames"]
        assert sum(worker_frames.values()) == 4 * 3  # 2 forwards + 1 fuse
        assert all(name.startswith("neon[") for name in worker_frames)

    def test_telemetry_gains_wall_latency(self):
        with FusionSession(small_config(executor="pipeline")) as s:
            report = s.run(3)
        assert report.telemetry["wall_latency_mean_ms"] > 0
        assert report.telemetry["wall_latency_p95_ms"] > 0

    def test_exec_stats_shape(self):
        stats = ExecStats(executor="x", frames=10, wall_seconds=2.0,
                          stage_busy_s={"fuse": 1.0})
        assert stats.wall_fps == 5.0
        assert stats.occupancy() == {"fuse": 0.5}
        as_dict = stats.as_dict()
        assert as_dict["wall_fps"] == 5.0
        assert as_dict["stage_occupancy"] == {"fuse": 0.5}


# ----------------------------------------------------------------------
class _SleepyProcessor(FrameProcessor):
    """Minimal processor whose forward stages dawdle, to make work
    pile up on whichever worker the affinity pins."""

    def __init__(self):
        self.results = []

    def ingest(self, pair, index):
        return {"index": index}

    def forward_visible(self, task, ctx=None):
        time.sleep(0.01)

    def forward_thermal(self, task, ctx=None):
        time.sleep(0.01)

    def fuse(self, task, ctx=None):
        pass

    def finalize(self, task):
        return task["index"]


class _NamedEngine:
    def __init__(self, name):
        self.name = name


class TestWorkStealing:
    def test_idle_worker_steals_from_loaded_queue(self):
        """Pinning every stage to one engine leaves the other worker
        dry; it must steal rather than idle."""
        team = [_NamedEngine("fpga"), _NamedEngine("neon")]
        executor = HeterogeneousExecutor(
            engines=team, queue_depth=8,
            affinity={"visible": "fpga", "thermal": "fpga", "fuse": "fpga"})
        results = list(executor.run(_SleepyProcessor(),
                                    iter(range(8)), limit=8))
        assert results == list(range(8))
        assert executor.stats.steals > 0
        # the stolen work registered on the idle engine's counter
        assert executor.stats.worker_frames.get("neon[1]", 0) > 0

    def test_affinity_validation(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousExecutor(engines=[_NamedEngine("a")],
                                  affinity={"sideways": "a"})
