"""The batch executor: serial parity, micro-batch semantics, lifecycle."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec import BatchExecutor, make_executor
from repro.exec.base import FrameProcessor
from repro.session import FusionConfig, FusionSession, SyntheticSource
from repro.types import FrameShape

SMALL = FrameShape(40, 40)


def small_config(**overrides):
    defaults = dict(engine="neon", fusion_shape=SMALL, levels=2, seed=5,
                    quality_metrics=False)
    defaults.update(overrides)
    return FusionConfig(**defaults)


def fuse_stream(executor, n=6, **overrides):
    """Fresh session + fresh seeded source -> list of results."""
    with FusionSession(small_config(executor=executor, **overrides)) as s:
        return list(s.stream(SyntheticSource(seed=5), limit=n))


class TestBatchParity:
    """Fixed seed => the batch executor produces bitwise-identical
    frames and identical modelled accounting to the serial loop, for
    every scheduler/feature combination and every micro-batch size."""

    @pytest.mark.parametrize("features", [
        {},
        dict(engine="online"),
        dict(engine="adaptive"),
        dict(temporal=True),
        dict(registration=True, monitor=True),
    ])
    def test_batch_matches_serial(self, features, assert_bitwise_parity):
        reference = fuse_stream("serial", **features)
        results = fuse_stream("batch", **features)
        assert_bitwise_parity(reference, results)

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 8, 32])
    def test_every_batch_size_matches_serial(self, batch_size,
                                             assert_bitwise_parity):
        reference = fuse_stream("serial", n=7)
        results = fuse_stream("batch", n=7, batch_size=batch_size)
        assert_bitwise_parity(reference, results,
                              label=f"batch_size={batch_size}")

    def test_online_scheduler_groups_split_by_engine(self):
        """A probing scheduler mixes engines inside one micro-batch;
        each frame must still compute on its assigned engine."""
        reference = fuse_stream("serial", n=8, engine="online")
        results = fuse_stream("batch", n=8, engine="online", batch_size=8)
        engines = {r.engine for r in results}
        assert len(engines) > 1  # the probe phase really did mix
        for ref, got in zip(reference, results):
            assert ref.engine == got.engine
            assert np.array_equal(ref.frame.pixels, got.frame.pixels)

    def test_reports_aggregate_identically(self):
        reports = {}
        for executor in ("serial", "batch"):
            with FusionSession(small_config(executor=executor,
                                            quality_metrics=True)) as s:
                reports[executor] = s.run(5).as_dict()
        ref, got = reports["serial"], reports["batch"]
        for key in ("frames", "engine_usage", "actions", "model_fps",
                    "millijoules_per_frame", "quality"):
            assert got[key] == ref[key], key

    def test_bounded_drive_never_reads_ahead(self):
        """Like serial, a limited batch drive must not consume source
        frames past its limit (the final micro-batch shrinks)."""
        frames = {}
        for executor in ("serial", "batch"):
            with FusionSession(small_config(executor=executor,
                                            batch_size=4)) as s:
                reports = [s.run(3), s.run(3)]
            frames[executor] = [rec.frame.pixels
                                for r in reports for rec in r.records]
            assert [rec.index for r in reports for rec in r.records] \
                == list(range(6))
        assert all(np.array_equal(a, b) for a, b
                   in zip(frames["serial"], frames["batch"]))


class TestBatchSemantics:
    def test_per_frame_results_from_partial_final_batch(self):
        """7 frames at batch_size 4 -> batches of 4 and 3, but exactly
        7 per-frame results with per-frame telemetry granularity."""
        with FusionSession(small_config(executor="batch",
                                        batch_size=4)) as s:
            results = list(s.stream(SyntheticSource(seed=5), limit=7))
        assert [r.index for r in results] == list(range(7))
        assert s.telemetry.frames == 7

    def test_throughput_block_reports_batch_stats(self):
        with FusionSession(small_config(executor="batch",
                                        batch_size=3)) as s:
            report = s.run(7)
        block = report.throughput
        assert block["executor"] == "batch"
        assert block["frames"] == 7
        assert block["wall_fps"] > 0
        assert block["queue_peak"]["batch"] == 3
        assert {"ingest", "batch", "finalize"} <= set(block["stage_busy_s"])

    def test_batch_size_validation(self):
        with pytest.raises(ConfigurationError):
            BatchExecutor(batch_size=0)
        with pytest.raises(ConfigurationError):
            small_config(batch_size=0)

    def test_registered_and_one_shot(self):
        executor = make_executor("batch", batch_size=2)
        assert isinstance(executor, BatchExecutor)
        assert executor.stats.executor == "batch"
        list(executor.run(_CountingProcessor(), iter(range(3)), limit=3))
        with pytest.raises(ConfigurationError, match="one"):
            executor.run(_CountingProcessor(), iter(range(3)))

    def test_default_process_batch_drives_per_frame_stages(self):
        """A processor without a batch override still works: the base
        hook falls back to the per-frame stages in frame order."""
        processor = _CountingProcessor()
        executor = BatchExecutor(batch_size=4)
        results = list(executor.run(processor, iter(range(6)), limit=6))
        assert results == list(range(6))
        # 6 frames at batch_size 4: ingest the whole micro-batch in
        # frame order, then drive each frame's stages in order
        assert processor.calls == (
            ["ingest"] * 4 + ["fv", "ft", "fuse"] * 4
            + ["ingest"] * 2 + ["fv", "ft", "fuse"] * 2
        )

    def test_spawns_no_threads(self):
        before = threading.active_count()
        fuse_stream("batch", n=5, batch_size=2)
        assert threading.active_count() == before

    def test_process_allowed_between_batch_streams(self):
        """batch is not a concurrent drive; process() composes freely
        around (but not inside) its streams."""
        vis = np.full((40, 40), 10.0)
        with FusionSession(small_config(executor="batch")) as s:
            s.run(2)
            assert s.process(vis, vis).frame.pixels.shape == (40, 40)


class _CountingProcessor(FrameProcessor):
    """Minimal processor recording the stage order it was driven in."""

    def __init__(self):
        self.calls = []

    def ingest(self, pair, index):
        self.calls.append("ingest")
        return {"index": index}

    def forward_visible(self, task, ctx=None):
        self.calls.append("fv")

    def forward_thermal(self, task, ctx=None):
        self.calls.append("ft")

    def fuse(self, task, ctx=None):
        self.calls.append("fuse")

    def finalize(self, task):
        return task["index"]
