"""Planner precision metadata and the autotuner's precision axes."""

import pytest

from repro.errors import ConfigurationError
from repro.graph import FusionGraph, Planner
from repro.graph.autotune import (CACHE_VERSION, TUNABLE_FIELDS,
                                  PlanAutotuner)
from repro.session import FusionConfig


def lower(**kw):
    config = FusionConfig(fusion_shape=(40, 32), levels=2, **kw)
    return Planner().lower(FusionGraph.canonical(
        registration=config.registration, temporal=config.temporal),
        config)


class TestPlannedKernelMetadata:
    def test_engine_stages_carry_kernel_and_dtype(self):
        plan = lower(engine="neon")
        for name in ("visible", "thermal", "fuse"):
            node = plan.node(name)
            assert node.kernel == "neon"
            assert node.precision == "float32"  # engine-native default

    def test_host_stages_carry_no_kernel(self):
        plan = lower(engine="neon")
        for name in ("ingest", "finalize"):
            assert plan.node(name).kernel == ""
            assert plan.node(name).precision == ""

    def test_explicit_precision_threads_through(self):
        plan = lower(engine="jit", precision="float64")
        assert plan.node("fuse").kernel == "jit"
        assert plan.node("fuse").precision == "float64"

    def test_as_dict_and_describe_expose_kernels(self):
        plan = lower(engine="jit", precision="float32")
        stages = {s["name"]: s for s in plan.as_dict()["stages"]}
        assert stages["fuse"]["kernel"] == "jit"
        assert stages["fuse"]["precision"] == "float32"
        assert "kernels      : " in plan.describe()
        assert "fuse=jit/float32" in plan.describe()

    def test_team_placement_reports_member_kernels(self):
        plan = lower(engine="adaptive", executor="hetero",
                     engine_team=("arm", "neon"))
        node = plan.node("visible")
        assert node.engine.startswith("team(")
        assert node.kernel == "neon|numpy"
        assert node.precision == "float32"

    def test_forced_fpga_under_float64_fails_at_plan_time(self):
        graph = FusionGraph.canonical().place("fuse", "fpga")
        config = FusionConfig(engine="neon", precision="float64",
                              fusion_shape=(40, 32), levels=2)
        with pytest.raises(ConfigurationError, match="fpga"):
            Planner().lower(graph, config)


class TestPrecisionAwareResolution:
    def test_adaptive_float64_never_picks_fpga(self):
        """The full paper frame normally goes to the FPGA; pinning
        float64 must re-route auto placements to a CPU engine."""
        native = Planner().lower(FusionGraph.canonical(),
                                 FusionConfig(engine="adaptive"))
        assert native.node("fuse").engine == "fpga"
        pinned = Planner().lower(FusionGraph.canonical(),
                                 FusionConfig(engine="adaptive",
                                              precision="float64"))
        assert pinned.node("fuse").engine in ("arm", "neon")
        assert pinned.node("fuse").precision == "float64"

    def test_online_float64_probe_engine_supports_it(self):
        plan = lower(engine="online", precision="float64")
        assert plan.dynamic_engine
        assert plan.node("fuse").engine in ("arm", "neon")


class TestAutotunePrecisionAxes:
    def test_precision_is_tunable_and_fingerprinted(self):
        assert "precision" in TUNABLE_FIELDS
        assert CACHE_VERSION == 2
        tuner = PlanAutotuner(cache_dir="/tmp/unused")
        fp = tuner._config_fingerprint(
            FusionConfig(engine="neon", precision="float64"))
        assert fp["precision"] == "float64"
        assert (tuner.cache_key(FusionConfig(engine="neon"))
                != tuner.cache_key(FusionConfig(engine="neon",
                                                precision="float64")))

    def test_compiled_engines_join_the_placement_axis(self):
        """jit and gpu qualify automatically via the dtype test."""
        axis = PlanAutotuner._placement_axis(FusionConfig(engine="neon"))
        assert {"jit", "gpu"} <= set(axis)

    def test_float64_config_offers_float32_candidates(self):
        tuner = PlanAutotuner(cache_dir="/tmp/unused")
        rows = tuner.candidates(FusionConfig(engine="neon",
                                             precision="float64"))
        assert {"precision": "float32", "optimize": True} in rows
        assert {"engine": "jit", "precision": "float32",
                "optimize": True} in rows
        # fpga can't run the incumbent float64, but qualifies under
        # the float32 candidate precision
        assert {"engine": "fpga", "optimize": True} not in rows
        assert {"engine": "fpga", "precision": "float32",
                "optimize": True} in rows

    def test_native_config_never_moves_the_precision_axis(self):
        """The bitwise default: no explicit precision, no dtype
        candidates."""
        tuner = PlanAutotuner(cache_dir="/tmp/unused")
        for kw in ({}, {"precision": "float32"}):
            rows = tuner.candidates(FusionConfig(engine="neon", **kw))
            assert not any("precision" in row for row in rows)

    def test_scheduler_engines_have_no_placement_axis(self):
        assert PlanAutotuner._placement_axis(
            FusionConfig(engine="adaptive")) == []
