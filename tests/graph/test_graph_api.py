"""The dataflow IR: Stage/FusionGraph validation and Planner lowering."""

import json
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, FusionError
from repro.graph import (
    ORDERED,
    Stage,
    FusionGraph,
    Planner,
)
from repro.session import FramePair, FusionConfig, FusionSession
from repro.types import FrameShape

SMALL = FrameShape(40, 40)


def small_config(**overrides):
    defaults = dict(engine="neon", fusion_shape=SMALL, levels=2, seed=5,
                    quality_metrics=False)
    defaults.update(overrides)
    return FusionConfig(**defaults)


def noop(task):
    pass


# ----------------------------------------------------------------------
class TestStageValidation:
    def test_map_requires_callable_fn(self):
        with pytest.raises(ConfigurationError, match="callable"):
            Stage(name="x", after=("ingest",))

    def test_builtin_kind_rejects_fn(self):
        with pytest.raises(ConfigurationError, match="fn is only"):
            Stage(name="fuse", kind="fuse", fn=noop, after=("visible",))

    def test_unknown_kind_and_state(self):
        with pytest.raises(ConfigurationError, match="kind"):
            Stage(name="x", kind="teleport", fn=noop, after=("a",))
        with pytest.raises(ConfigurationError, match="state"):
            Stage(name="x", fn=noop, after=("a",), state="eventual")

    def test_ordered_batchable_is_contradictory(self):
        with pytest.raises(ConfigurationError, match="batchable"):
            Stage(name="x", fn=noop, after=("a",), state=ORDERED,
                  batchable=True)

    def test_bare_string_after_rejected(self):
        with pytest.raises(ConfigurationError, match="tuple"):
            Stage(name="x", fn=noop, after="ingest")


class TestGraphValidation:
    def test_canonical_graph_validates(self):
        for registration in (False, True):
            for temporal in (False, True):
                graph = FusionGraph.canonical(registration=registration,
                                              temporal=temporal)
                graph.validate()

    def test_duplicate_stage_name_rejected(self):
        graph = FusionGraph.canonical()
        with pytest.raises(ConfigurationError, match="duplicate"):
            graph.add(Stage(name="fuse", fn=noop, after=("ingest",)))

    def test_cycle_detected_and_named(self):
        graph = FusionGraph.canonical()
        graph.add_stage("a", noop, after=("b",))
        graph.add_stage("b", noop, after=("a",))
        with pytest.raises(ConfigurationError, match="cycle"):
            graph.validate()

    def test_unknown_dependency_rejected(self):
        graph = FusionGraph.canonical()
        graph.add_stage("a", noop, after=("nowhere",))
        with pytest.raises(ConfigurationError, match="unknown stage"):
            graph.validate()

    def test_single_ingest_and_finalize_enforced(self):
        graph = FusionGraph.canonical()
        graph.add(Stage(name="ingest2", kind="ingest", state=ORDERED))
        with pytest.raises(ConfigurationError, match="exactly one ingest"):
            graph.validate()
        graph = FusionGraph.canonical()
        graph.drop("finalize")
        with pytest.raises(ConfigurationError, match="finalize"):
            graph.validate()

    def test_dangling_stage_rejected(self):
        """Every stage must (transitively) feed finalize."""
        graph = FusionGraph.canonical()
        graph.add_stage("island", noop, after=("fuse",))
        with pytest.raises(ConfigurationError, match="island"):
            graph.validate()

    def test_insert_after_rewires_consumers(self):
        graph = FusionGraph.canonical()
        graph.insert_after("fuse", Stage(name="denoise", fn=noop))
        graph.validate()
        assert graph.stage("denoise").after == ("fuse",)
        assert graph.stage("finalize").after == ("denoise",)

    def test_drop_rewires_consumers(self):
        graph = FusionGraph.canonical(registration=True)
        graph.drop("register")
        graph.validate()
        assert graph.stage("visible").after == ("ingest",)

    def test_describe_lists_every_stage(self):
        graph = FusionGraph.canonical(registration=True)
        text = graph.describe()
        for name in ("ingest", "register", "visible", "thermal", "fuse",
                     "finalize"):
            assert name in text


# ----------------------------------------------------------------------
class TestPlannerLowering:
    def test_canonical_roles_and_schedule(self):
        plan = Planner().lower(FusionGraph.canonical(), small_config())
        assert plan.schedule == ("ingest", "visible", "thermal", "fuse",
                                 "finalize")
        assert plan.head == ("ingest",)
        assert plan.parallel == ("visible", "thermal")
        assert plan.mid == ("fuse",)
        assert plan.tail == ("finalize",)
        assert not plan.sequential_mid
        assert plan.fusable_core
        assert plan.batch_groups == (("visible", "thermal", "fuse"),)

    def test_temporal_plan_is_sequential(self):
        plan = Planner().lower(
            FusionGraph.canonical(registration=True, temporal=True),
            small_config(registration=True, temporal=True))
        assert plan.head == ("ingest", "register")
        assert plan.parallel == ()
        assert plan.mid == ("temporal",)
        assert plan.sequential_mid
        assert plan.batch_groups == ()

    def test_auto_placement_resolves_through_cost_model(self):
        full = Planner().lower(FusionGraph.canonical(),
                               small_config(engine="adaptive",
                                            fusion_shape=FrameShape(88, 72),
                                            levels=3))
        assert full.node("fuse").engine == "fpga"
        small = Planner().lower(FusionGraph.canonical(),
                                small_config(engine="adaptive",
                                             fusion_shape=FrameShape(32, 24)))
        assert small.node("fuse").engine == "neon"

    def test_online_plan_is_dynamic(self):
        plan = Planner().lower(FusionGraph.canonical(),
                               small_config(engine="online"))
        assert plan.dynamic_engine
        assert "per frame" in plan.describe()

    def test_forced_placement_disables_the_stacked_core(self):
        graph = FusionGraph.canonical().place("fuse", "fpga")
        plan = Planner().lower(graph, small_config())
        assert plan.node("fuse").engine == "fpga"
        assert not plan.fusable_core

    def test_unknown_placement_rejected(self):
        graph = FusionGraph.canonical().place("fuse", "abacus")
        with pytest.raises(ConfigurationError, match="registered engine"):
            Planner().lower(graph, small_config())

    def test_custom_stage_between_forwards_and_fuse_decores(self):
        """A node wedged into the pyramid path keeps the graph legal
        but makes the single-invocation stacked core ineligible."""
        graph = FusionGraph.canonical()
        graph.add_stage("sharpen", noop, after=("visible",))
        graph.connect("fuse", "sharpen").disconnect("fuse", "visible")
        graph.validate()
        plan = Planner().lower(graph, small_config())
        assert not plan.fusable_core
        assert "sharpen" in plan.mid

    def test_temporal_graph_needs_temporal_config(self):
        with pytest.raises(ConfigurationError, match="temporal"):
            Planner().lower(FusionGraph.canonical(temporal=True),
                            small_config())
        with pytest.raises(ConfigurationError, match="temporal"):
            Planner().lower(FusionGraph.canonical(),
                            small_config(temporal=True))

    def test_register_graph_needs_registration_config(self):
        with pytest.raises(ConfigurationError, match="registration"):
            Planner().lower(FusionGraph.canonical(registration=True),
                            small_config())

    def test_registration_config_needs_register_stage_or_explicit_drop(self):
        """A registration=True session rejects a graph that silently
        lacks the register stage — the absence must be an explicit
        drop() decision, not a forgotten flag."""
        config = small_config(registration=True)
        with pytest.raises(ConfigurationError, match="register"):
            Planner().lower(FusionGraph.canonical(), config)
        dropped = FusionGraph.canonical(registration=True).drop("register")
        plan = Planner().lower(dropped, config)  # explicit: allowed
        assert "register" not in plan.schedule

    def test_only_transform_stages_are_placeable(self):
        for name in ("ingest", "finalize"):
            graph = FusionGraph.canonical().place(name, "neon")
            with pytest.raises(ConfigurationError, match="cannot be placed"):
                Planner().lower(graph, small_config())
        # custom map stages run host-side NumPy: placement is rejected
        # rather than silently ignored
        graph = FusionGraph.canonical()
        graph.insert_after("fuse", Stage(name="denoise", fn=noop,
                                         placement="fpga"))
        with pytest.raises(ConfigurationError, match="cannot be placed"):
            Planner().lower(graph, small_config())

    def test_map_stages_are_host_placed_in_the_plan(self):
        graph = FusionGraph.canonical()
        graph.insert_after("fuse", Stage(name="denoise", fn=noop))
        plan = Planner().lower(graph, small_config())
        assert plan.node("denoise").engine == "host"
        assert plan.node("denoise").model_seconds == 0.0

    def test_dropping_a_forward_stage_fails_at_lowering(self):
        """A fuse stage without both pyramids must be a clear planning
        error, not an AttributeError inside an executor thread."""
        graph = FusionGraph.canonical()
        graph.drop("visible")
        with pytest.raises(ConfigurationError, match="forward"):
            Planner().lower(graph, small_config())
        with pytest.raises(ConfigurationError, match="forward"):
            FusionSession(small_config(
                graph_overrides={"drop": ("thermal",)}))

    def test_fuse_must_be_fed_by_both_forwards(self):
        graph = FusionGraph.canonical()
        graph.disconnect("fuse", "thermal")
        graph.connect("finalize", "thermal")  # keep thermal reachable
        graph.validate()
        with pytest.raises(ConfigurationError, match="never reach"):
            Planner().lower(graph, small_config())

    def test_connect_and_disconnect_validation(self):
        graph = FusionGraph.canonical()
        with pytest.raises(ConfigurationError, match="no stage"):
            graph.connect("fuse", "nowhere")
        with pytest.raises(ConfigurationError, match="does not depend"):
            graph.disconnect("fuse", "ingest")
        graph.connect("fuse", "visible")  # already present: no-op
        assert graph.stage("fuse").after == ("visible", "thermal")

    def test_session_graph_is_a_defensive_copy(self):
        """Edits to session.graph after construction would be dead
        code (the plan is lowered once); the property hands back a
        copy so such edits cannot silently diverge from the plan."""
        with FusionSession(small_config()) as session:
            session.graph.insert_after("fuse", Stage(name="tag",
                                                     fn=noop))
            assert "tag" not in session.graph
            assert "tag" not in session.plan

    def test_renamed_builtin_stage_rejected(self):
        graph = FusionGraph()
        graph.add(Stage(name="ingest", kind="ingest", state=ORDERED))
        graph.add(Stage(name="blend", kind="fuse", after=("ingest",)))
        graph.add(Stage(name="finalize", kind="finalize", state=ORDERED,
                        after=("blend",)))
        with pytest.raises(ConfigurationError, match="canonical name"):
            Planner().lower(graph, small_config())

    def test_plan_as_dict_is_json_serializable(self):
        plan = Planner().lower(FusionGraph.canonical(), small_config())
        payload = json.loads(json.dumps(plan.as_dict()))
        assert payload["schedule"][0] == "ingest"
        assert payload["stages"][0]["role"] == "head"
        assert payload["model_seconds_per_frame"] > 0

    def test_mixed_team_affinity_comes_from_per_level_plan(self):
        plan = Planner().lower(
            FusionGraph.canonical(),
            small_config(executor="hetero", engine_team=("fpga", "neon"),
                         fusion_shape=FrameShape(88, 72), levels=3))
        assert plan.affinity is not None and "fuse" in plan.affinity
        assert plan.affinity["fuse"] in ("fpga", "neon")
        # the stage table agrees with the drive: the pinned fuse stage
        # is placed (and costed) on its affinity engine, and the
        # round-robin forwards are labelled as team dispatch
        assert plan.node("fuse").engine == plan.affinity["fuse"]
        assert plan.node("visible").engine == "team(fpga,neon)"
        assert plan.node("visible").model_seconds > 0


# ----------------------------------------------------------------------
class TestSessionPlanIntegration:
    def test_session_exposes_graph_and_plan(self):
        with FusionSession(small_config()) as session:
            assert session.plan.schedule[0] == "ingest"
            assert "fuse" in session.graph
            fork = session.canonical_graph()
            fork.add_stage("x", noop, after=("fuse",))
            # the fork is independent: the session's graph is untouched
            assert "x" not in session.graph

    def test_graph_overrides_drop_and_place(self):
        config = small_config(
            registration=True,
            graph_overrides={"drop": ("register",),
                             "place": {"fuse": "fpga"}})
        with FusionSession(config) as session:
            assert "register" not in session.graph
            assert session.plan.node("fuse").engine == "fpga"
            report = session.run(2)
        assert report.frames == 2

    def test_graph_overrides_insert_after(self):
        marks = []

        def tag(task):
            marks.append(task.index)

        config = small_config(graph_overrides={
            "insert_after": {"fuse": Stage(name="tag", fn=tag)}})
        with FusionSession(config) as session:
            session.run(3)
        assert marks == [0, 1, 2]

    def test_bad_overrides_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="graph_overrides"):
            small_config(graph_overrides={"teleport": ()})
        with pytest.raises(ConfigurationError, match="Stage"):
            small_config(graph_overrides={"insert_after": {"fuse": noop}})

    def test_ordered_stage_guard_trips_on_concurrent_drive(self):
        """Driving an ordered stage from two threads at once is an
        executor-contract violation and raises FusionError instead of
        silently corrupting cross-frame state."""
        entered = threading.Event()
        release = threading.Event()

        def slow(task):
            entered.set()
            release.wait(timeout=5)

        graph = FusionGraph.canonical()
        graph.insert_after("fuse", Stage(name="slow", fn=slow,
                                         state=ORDERED))
        with FusionSession(small_config()) as session:
            processor = session._processor_for(graph)
            task = processor.ingest(FramePair(visible=np.zeros((40, 40)),
                                              thermal=np.zeros((40, 40))), 0)
            errors = []

            def drive():
                try:
                    processor.run_stage("slow", task)
                except FusionError as exc:
                    errors.append(exc)

            first = threading.Thread(target=drive)
            first.start()
            assert entered.wait(timeout=5)
            with pytest.raises(FusionError, match="ordered stage"):
                processor.run_stage("slow", task)
            release.set()
            first.join(timeout=5)
            assert not errors  # the first drive held the lane legally
