"""User-inserted stages: identical results under all four executors."""

import numpy as np
import pytest

from repro.graph import Stage
from repro.session import FusionConfig, FusionSession, SyntheticSource
from repro.types import FrameShape

SMALL = FrameShape(40, 40)
EXECUTORS = ("serial", "pipeline", "hetero", "batch")


def small_config(**overrides):
    defaults = dict(engine="neon", fusion_shape=SMALL, levels=2, seed=5,
                    quality_metrics=False)
    defaults.update(overrides)
    return FusionConfig(**defaults)


def posterize(task):
    """A deterministic, visibly destructive post-fuse stage."""
    task.fused = np.round(task.fused / 32.0) * 32.0


def burn_index(task):
    """An overlay stage whose output depends on the frame index —
    catches executors that run custom stages against the wrong task."""
    task.fused = task.fused.copy()
    task.fused[:2, :2] = float(task.index % 7)


def denoise_graph(session):
    graph = session.canonical_graph()
    graph.insert_after("fuse", Stage(name="posterize", fn=posterize,
                                     batchable=True))
    return graph


def fuse_stream(executor, graph_builder=None, n=6, **overrides):
    with FusionSession(small_config(executor=executor, **overrides)) as s:
        graph = graph_builder(s) if graph_builder else None
        return list(s.stream(SyntheticSource(seed=5), limit=n, graph=graph))


class TestCustomStageParity:
    @pytest.mark.parametrize("executor", EXECUTORS[1:])
    def test_custom_stage_matches_serial(self, executor,
                                         assert_bitwise_parity):
        reference = fuse_stream("serial", denoise_graph)
        results = fuse_stream(executor, denoise_graph)
        assert_bitwise_parity(reference, results, label=executor)

    def test_custom_stage_actually_changes_output(self):
        plain = fuse_stream("serial")
        posterized = fuse_stream("serial", denoise_graph)
        assert any(not np.array_equal(a.frame.pixels, b.frame.pixels)
                   for a, b in zip(plain, posterized))

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_index_dependent_stage_sees_its_own_task(self, executor):
        def build(session):
            graph = session.canonical_graph()
            graph.insert_after("fuse", Stage(name="burn", fn=burn_index))
            return graph

        results = fuse_stream(executor, build, n=8)
        for result in results:
            assert np.all(result.frame.pixels[:2, :2]
                          == result.index % 7)

    @pytest.mark.parametrize("executor", EXECUTORS[1:])
    def test_custom_stage_with_scheduler_matches_serial(self, executor):
        reference = fuse_stream("serial", denoise_graph, engine="online")
        results = fuse_stream(executor, denoise_graph, engine="online")
        for ref, got in zip(reference, results):
            assert np.array_equal(ref.frame.pixels, got.frame.pixels)
            assert ref.engine == got.engine

    def test_graph_drive_is_per_stream_only(self):
        """A graph= drive never replaces the session's standing plan."""
        with FusionSession(small_config()) as s:
            custom = list(s.stream(SyntheticSource(seed=5), limit=2,
                                   graph=denoise_graph(s)))
            assert "posterize" not in s.plan
            plain = list(s.stream(SyntheticSource(seed=5), limit=2))
        assert any(not np.array_equal(a.frame.pixels, b.frame.pixels)
                   for a, b in zip(custom, plain))

    def test_run_accepts_graph(self):
        with FusionSession(small_config()) as s:
            report = s.run(3, graph=denoise_graph(s))
        assert report.frames == 3

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_parallel_custom_stage(self, executor):
        """A stateless stage depending only on ingest joins the
        parallel wave and still lands identical results."""
        seen = []

        def stamp(task):
            # pure per-task work (the wave may run it on any thread)
            task.visible = task.visible + 0.0
            seen.append(task.index)

        def build(session):
            graph = session.canonical_graph()
            graph.add_stage("stamp", stamp, after=("ingest",))
            # feed finalize so the stage is not dangling
            graph.connect("finalize", "stamp")
            return graph

        results = fuse_stream(executor, build, n=4)
        assert len(results) == 4
        assert sorted(seen) == [0, 1, 2, 3]

    def test_forced_placement_changes_arithmetic_engine(self):
        """Pinning the fuse stage onto the FPGA engine is honoured by
        every executor identically (fixed-point arithmetic differs
        from NEON, so parity across executors is the real check)."""
        def build(session):
            return session.canonical_graph().place("fuse", "fpga")

        reference = fuse_stream("serial", build)
        for executor in EXECUTORS[1:]:
            results = fuse_stream(executor, build)
            for ref, got in zip(reference, results):
                assert np.array_equal(ref.frame.pixels, got.frame.pixels)

    def test_forced_placement_billed_to_forced_engine(self):
        """The run report agrees with the lowered plan: a forced fuse
        stage is accounted on its forced engine, per stage."""
        from repro.hw.registry import create_engine
        config = small_config(
            graph_overrides={"place": {"fuse": "fpga"}})
        with FusionSession(config) as session:
            report = session.run(2)
            plan_fuse_s = session.plan.node("fuse").model_seconds
        neon, fpga = create_engine("neon"), create_engine("fpga")
        want = (2 * neon.forward_time(SMALL, 2).total_s
                + fpga.fusion_time(SMALL, 2).total_s
                + fpga.inverse_time(SMALL, 2).total_s)
        assert report.model_seconds_total == pytest.approx(2 * want,
                                                           rel=1e-12)
        assert plan_fuse_s == pytest.approx(
            fpga.fusion_time(SMALL, 2).total_s
            + fpga.inverse_time(SMALL, 2).total_s, rel=1e-12)
        # and it differs from the unforced session's accounting
        with FusionSession(small_config()) as session:
            plain = session.run(2)
        assert plain.model_seconds_total != report.model_seconds_total

    def test_forced_placement_billed_under_mixed_team(self):
        """Co-scheduled dispatch must not override a forced placement's
        attribution: the stage computes on the forced engine, so the
        stage map and the energy bill name the forced engine too."""
        from repro.hw.registry import create_engine
        config = small_config(
            executor="hetero", engine_team=("fpga", "neon"),
            graph_overrides={"place": {"fuse": "arm"}})
        with FusionSession(config) as s:
            results = list(s.stream(SyntheticSource(seed=5), limit=4))
        arm = create_engine("arm")
        want_fuse_s = (arm.fusion_time(SMALL, 2).total_s
                       + arm.inverse_time(SMALL, 2).total_s)
        for result in results:
            stages = result.frame.metadata["stages"]
            assert stages["fuse"] == "arm"
            assert stages["visible"] in ("fpga", "neon")
            assert result.engine == "arm"  # labelled by the fuse stage
        # the per-stage bill includes the arm fuse time exactly
        fpga, neon = create_engine("fpga"), create_engine("neon")
        for result in results:
            stages = result.frame.metadata["stages"]
            fwd = {"fpga": fpga, "neon": neon}
            want = (fwd[stages["visible"]].forward_time(SMALL, 2).total_s
                    + fwd[stages["thermal"]].forward_time(SMALL, 2).total_s
                    + want_fuse_s)
            assert result.model_seconds == pytest.approx(want, rel=1e-12)

    def test_non_batchable_stage_keeps_frame_major_cadence(self):
        """batchable=False is honoured by the batch executor: within a
        contiguous non-batchable run, frame i passes through every
        stage of the run before frame i+1 enters it."""
        calls = []

        def a(task):
            calls.append(("a", task.index))

        def b(task):
            calls.append(("b", task.index))

        def build(session):
            graph = session.canonical_graph()
            graph.insert_after("fuse", Stage(name="a", fn=a))
            graph.insert_after("a", Stage(name="b", fn=b))
            return graph

        fuse_stream("batch", build, n=4, batch_size=4)
        assert calls == [("a", 0), ("b", 0), ("a", 1), ("b", 1),
                         ("a", 2), ("b", 2), ("a", 3), ("b", 3)]

    def test_map_stage_never_attributed_to_an_engine(self):
        """Under a co-scheduled team, metadata['stages'] must agree
        with the plan: map stages run host-side NumPy and are never
        billed to (or labelled with) a team engine."""
        def build(session):
            graph = session.canonical_graph()
            graph.insert_after("fuse", Stage(name="tag", fn=lambda t: None))
            return graph

        results = fuse_stream("hetero", build,
                              engine_team=("fpga", "neon"))
        for result in results:
            assert set(result.frame.metadata["stages"]) \
                == {"visible", "thermal", "fuse"}

    def test_batch_schedule_is_what_executes(self):
        """plan.batch_schedule is the single execution order: the core
        first, then stacked/frame runs matching each stage's
        batchability."""
        def build(session):
            graph = session.canonical_graph()
            graph.insert_after("fuse", Stage(name="a", fn=lambda t: None))
            graph.insert_after("a", Stage(name="b", fn=lambda t: None,
                                          batchable=True))
            return graph

        with FusionSession(small_config()) as s:
            graph = build(s)
            plan = s._processor_for(graph).plan
        assert plan.batch_schedule == (
            (("visible", "thermal", "fuse"), "core"),
            (("a",), "frame"),
            (("b",), "stacked"),
        )
        assert plan.batch_groups == (("visible", "thermal", "fuse"),
                                     ("b",))

    def test_batchable_custom_stage_runs_stage_major(self):
        calls = []

        def tap(task):
            calls.append(task.index)

        def build(session):
            graph = session.canonical_graph()
            graph.insert_after("fuse", Stage(name="tap", fn=tap,
                                             batchable=True))
            return graph

        fuse_stream("batch", build, n=4, batch_size=2)
        # stage-major within each micro-batch, frame order preserved
        assert calls == [0, 1, 2, 3]
