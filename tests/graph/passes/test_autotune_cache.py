"""Regression tests of the plan autotuner and its persistent cache.

The cache is untrusted input: corrupt JSON, stale versions, mismatched
shapes or invalid overrides must be logged and ignored — the tuner
re-measures and overwrites, it never crashes and never applies a wrong
plan.  A valid entry short-circuits the measurement entirely, which is
the contract sessions rely on for fast construction.
"""

import json
import logging

import pytest

from repro.errors import ConfigurationError
from repro.graph.autotune import (CACHE_VERSION, PlanAutotuner,
                                  PlanDecision)
from repro.session import FusionConfig, FusionSession
from repro.types import FrameShape

SHAPE = FrameShape(40, 32)


def _config(**kw):
    kw.setdefault("engine", "arm")
    kw.setdefault("fusion_shape", SHAPE)
    kw.setdefault("quality_metrics", False)
    kw.setdefault("keep_records", False)
    return FusionConfig(**kw)


@pytest.fixture()
def tuner(tmp_path):
    return PlanAutotuner(cache_dir=str(tmp_path), calibration_frames=2)


def _write_entry(tuner, key, **mutations):
    """A structurally valid cache entry for ``key``, then mutated."""
    entry = {
        "version": CACHE_VERSION,
        "key": key,
        "shape": [SHAPE.width, SHAPE.height],
        "overrides": {"optimize": True},
        "fps": 10.0,
    }
    entry.update(mutations)
    path = tuner.cache_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entry))
    return path


class TestDecisions:
    def test_tunes_then_hits_the_cache(self, tuner):
        config = _config()
        first = tuner.decide(config)
        assert first.source == "tuned"
        assert tuner.cache_path(first.key).is_file()
        second = tuner.decide(config)
        assert second.source == "cache"
        assert second.key == first.key
        assert second.overrides == first.overrides

    def test_winner_is_never_worse_than_the_default(self, tuner):
        decision = tuner.decide(_config())
        rows = {tuple(sorted(r["overrides"].items())): r["fps"]
                for r in decision.candidates}
        assert () in rows, "the incumbent config must always measure"
        assert decision.fps >= rows[()]

    def test_apply_disables_further_autotuning(self, tuner):
        decision = PlanDecision(overrides={"optimize": True}, fps=1.0,
                                source="tuned", key="k")
        applied = decision.apply(_config(autotune=True))
        assert applied.autotune is False
        assert applied.optimize is True

    def test_different_shapes_use_different_keys(self, tuner):
        a = tuner.cache_key(_config())
        b = tuner.cache_key(_config(fusion_shape=FrameShape(24, 24)))
        assert a != b

    def test_different_graphs_use_different_keys(self, tuner):
        a = tuner.cache_key(_config())
        b = tuner.cache_key(_config(registration=True))
        assert a != b


class TestCacheTolerance:
    """Bad cache files are ignored with a logged event, never fatal."""

    def _decide_expecting_retune(self, tuner, caplog, needle):
        config = _config()
        with caplog.at_level(logging.WARNING, logger="repro.autotune"):
            decision = tuner.decide(config)
        assert decision.source == "tuned", \
            "a bad cache entry must force a re-tune"
        assert any(needle in record.message for record in caplog.records)
        return decision

    def test_corrupt_json_is_ignored_and_retuned(self, tuner, caplog):
        key = tuner.cache_key(_config())
        path = _write_entry(tuner, key)
        path.write_text("{not json at all")
        decision = self._decide_expecting_retune(tuner, caplog,
                                                 "corrupt JSON")
        # the re-tune overwrites the bad file with a valid one
        assert json.loads(path.read_text())["key"] == key
        assert decision.key == key

    def test_stale_version_is_ignored_and_retuned(self, tuner, caplog):
        key = tuner.cache_key(_config())
        _write_entry(tuner, key, version=CACHE_VERSION - 1)
        self._decide_expecting_retune(tuner, caplog, "stale cache")

    def test_shape_mismatch_is_ignored_and_retuned(self, tuner, caplog):
        key = tuner.cache_key(_config())
        _write_entry(tuner, key, shape=[640, 480])
        self._decide_expecting_retune(tuner, caplog, "shape mismatch")

    def test_key_mismatch_is_ignored_and_retuned(self, tuner, caplog):
        key = tuner.cache_key(_config())
        path = _write_entry(tuner, key)
        entry = json.loads(path.read_text())
        entry["key"] = "somebody-else"
        path.write_text(json.dumps(entry))
        self._decide_expecting_retune(tuner, caplog, "key mismatch")

    def test_non_tunable_override_is_ignored(self, tuner, caplog):
        key = tuner.cache_key(_config())
        _write_entry(tuner, key,
                     overrides={"seed": 1, "optimize": True})
        self._decide_expecting_retune(tuner, caplog, "non-tunable")

    def test_invalid_override_value_is_ignored(self, tuner, caplog):
        key = tuner.cache_key(_config())
        _write_entry(tuner, key, overrides={"executor": "warp-drive"})
        self._decide_expecting_retune(tuner, caplog,
                                      "do not validate")

    def test_non_object_entry_is_ignored(self, tuner, caplog):
        key = tuner.cache_key(_config())
        path = tuner.cache_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps([1, 2, 3]))
        self._decide_expecting_retune(tuner, caplog, "not an object")

    def test_clear_cache_removes_entries(self, tuner):
        key = tuner.cache_key(_config())
        _write_entry(tuner, key)
        assert tuner.clear_cache() == 1
        assert not tuner.cache_path(key).exists()


class TestConcurrentWriters:
    """The sharded service creates real multi-process writers of one
    cache entry; the publish path (pid-unique tmp + locked rename)
    must never let a reader observe a torn file."""

    def test_concurrent_processes_publish_whole_entries(self, tmp_path):
        import multiprocessing as mp

        ctx = mp.get_context("fork" if "fork"
                             in mp.get_all_start_methods() else "spawn")
        stop = ctx.Event()
        fail = ctx.Event()
        workers = [ctx.Process(target=_hammer_cache,
                               args=(str(tmp_path), seed, stop, fail))
                   for seed in range(4)]
        for worker in workers:
            worker.start()
        try:
            # read the entry continuously while four processes publish
            tuner = PlanAutotuner(cache_dir=str(tmp_path),
                                  calibration_frames=2)
            path = tuner.cache_path(tuner.cache_key(_config()))
            deadline = __import__("time").monotonic() + 3.0
            reads = 0
            while __import__("time").monotonic() < deadline:
                if fail.is_set():
                    break
                if path.exists():
                    text = path.read_text()
                    entry = json.loads(text)  # torn JSON would raise
                    assert entry["key"] == tuner.cache_key(_config())
                    reads += 1
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=30)
                if worker.is_alive():
                    worker.kill()
        assert not fail.is_set(), "a writer process crashed"
        assert reads > 0, "the readers never saw a published entry"
        # no abandoned tmp files once the dust settles
        assert not list(tmp_path.rglob("*.tmp"))

    def test_store_leaves_no_tmp_residue(self, tuner):
        decision = tuner.decide(_config())
        parent = tuner.cache_path(decision.key).parent
        assert not list(parent.glob("*.tmp"))


def _hammer_cache(cache_dir, seed, stop, fail):
    """Child-process body: republish the same cache entry in a loop."""
    try:
        tuner = PlanAutotuner(cache_dir=cache_dir, calibration_frames=2)
        config = _config()
        decision = PlanDecision(overrides={"optimize": bool(seed % 2)},
                                fps=float(seed + 1), source="tuned",
                                key=tuner.cache_key(config))
        while not stop.is_set():
            tuner._store(decision, config)
    except BaseException:
        fail.set()
        raise


class TestSessionIntegration:
    def test_second_session_hits_the_plan_cache(self, tmp_path):
        config = _config(autotune=True, plan_cache_dir=str(tmp_path))
        with FusionSession(config) as first:
            assert first.autotune_decision is not None
            assert first.autotune_decision.source == "tuned"
            assert first.config.autotune is False
        with FusionSession(config) as second:
            assert second.autotune_decision.source == "cache", \
                "an identical key must not re-tune"
            assert second.autotune_decision.overrides \
                == first.autotune_decision.overrides
            assert second.autotune_decision.candidates == ()

    def test_autotune_rejects_engine_team(self):
        with pytest.raises(ConfigurationError):
            _config(autotune=True, executor="hetero",
                    engine_team=("arm", "neon"))

    def test_untuned_session_has_no_decision(self):
        with FusionSession(_config()) as session:
            assert session.autotune_decision is None
