"""Unit tests of the plan-optimization pass pipeline.

Each pass is exercised directly against lowered plans (structure: what
gets fused, pooled, hoisted — and what is left alone), then the whole
pipeline end-to-end through sessions: an optimized session must produce
bitwise-identical frames and identical modelled accounting, while its
telemetry gains per-stage wall-time attribution.
"""

import numpy as np
import pytest

from repro.graph import FusionGraph, Planner, Stage, optimize_plan
from repro.graph.passes import (LoopInvariantHoistPass,
                                MaterializationEliminationPass,
                                PassPipeline, StatelessFusionPass,
                                default_pipeline)
from repro.hw.registry import create_engine
from repro.session import FusionConfig, FusionSession
from repro.types import FrameShape

SHAPE = FrameShape(40, 32)


def _config(**kw):
    kw.setdefault("engine", "arm")
    kw.setdefault("fusion_shape", SHAPE)
    kw.setdefault("quality_metrics", False)
    return FusionConfig(**kw)


def _lower(config):
    graph = FusionGraph.canonical(registration=config.registration,
                                  temporal=config.temporal)
    return Planner().lower(graph, config), config


def _pairs(n=4, seed=3):
    rng = np.random.default_rng(seed)
    return [(rng.uniform(0, 255, SHAPE.array_shape),
             rng.uniform(0, 255, SHAPE.array_shape)) for _ in range(n)]


class TestStatelessFusionPass:
    def test_serial_plan_fuses_the_whole_core(self):
        plan, config = _lower(_config(executor="serial"))
        fused, report = StatelessFusionPass().run(plan, config)
        assert report.changed
        assert fused.units == {
            "visible+thermal+fuse": ("visible", "thermal", "fuse")}
        assert "visible+thermal+fuse" in fused.compute
        # original stage names survive in schedule and nodes
        assert set(plan.schedule) == set(fused.schedule)
        assert set(plan.nodes) == set(fused.nodes)

    def test_concurrent_executors_fuse_only_the_parallel_wave(self):
        for executor in ("pipeline", "hetero"):
            plan, config = _lower(_config(executor=executor))
            fused, report = StatelessFusionPass().run(plan, config)
            assert report.changed, executor
            assert fused.units == {
                "visible+thermal": ("visible", "thermal")}
            assert "fuse" in fused.mid
            assert fused.parallel == ("visible+thermal",)

    def test_sequential_mid_is_left_alone(self):
        plan, config = _lower(_config(temporal=True))
        fused, report = StatelessFusionPass().run(plan, config)
        assert not report.changed
        assert fused.units == {}
        assert fused is plan

    def test_engine_team_is_left_alone(self):
        config = _config(executor="hetero",
                         engine_team=("arm", "neon"))
        plan = Planner().lower(FusionGraph.canonical(), config)
        fused, report = StatelessFusionPass().run(plan, config)
        assert not report.changed
        assert fused.units == {}

    def test_placement_change_breaks_the_chain(self):
        graph = FusionGraph.canonical()
        graph.place("fuse", "neon")
        config = _config(executor="serial")
        plan = Planner().lower(graph, config)
        fused, _ = StatelessFusionPass().run(plan, config)
        # visible+thermal share AUTO placement; the pinned fuse cannot
        # join them
        assert fused.units == {"visible+thermal": ("visible", "thermal")}

    def test_idempotent(self):
        plan, config = _lower(_config(executor="serial"))
        once, _ = StatelessFusionPass().run(plan, config)
        twice, report = StatelessFusionPass().run(once, config)
        assert not report.changed
        assert twice.units == once.units


class TestMaterializationEliminationPass:
    def test_requires_a_stacked_consumer(self):
        plan, config = _lower(_config(executor="serial"))
        rewritten, report = MaterializationEliminationPass().run(plan,
                                                                 config)
        assert not report.changed
        assert not rewritten.scratch

    def test_fires_after_stage_fusion(self):
        plan, config = _lower(_config(executor="serial"))
        fused, _ = StatelessFusionPass().run(plan, config)
        pooled, report = MaterializationEliminationPass().run(fused,
                                                              config)
        assert report.changed
        assert pooled.scratch

    def test_fires_for_the_batch_stacked_core(self):
        plan, config = _lower(_config(executor="batch"))
        pooled, report = MaterializationEliminationPass().run(plan,
                                                              config)
        assert report.changed
        assert pooled.scratch


class TestLoopInvariantHoistPass:
    def test_hoists_the_frame_cost_table(self):
        plan, config = _lower(_config(executor="serial"))
        hoisted, report = LoopInvariantHoistPass().run(plan, config)
        assert report.changed
        expected = create_engine("arm").frame_time(
            config.fusion_shape, config.levels).total_s
        assert hoisted.hoisted_frame_seconds == {"arm": expected}

    def test_dynamic_engine_hoists_the_whole_probe_set(self):
        plan, config = _lower(_config(engine="online"))
        hoisted, _ = LoopInvariantHoistPass().run(plan, config)
        assert set(hoisted.hoisted_frame_seconds) >= {"arm", "neon",
                                                      "fpga"}


class TestPipeline:
    def test_default_pipeline_runs_all_three_passes(self):
        plan, config = _lower(_config(executor="serial"))
        optimized = optimize_plan(plan, config)
        assert optimized.optimized
        assert [r["pass"] for r in optimized.pass_reports] == [
            "fuse-stages", "eliminate-materialization",
            "hoist-invariants"]
        assert optimized.units and optimized.scratch
        assert optimized.hoisted_frame_seconds

    def test_as_dict_and_describe_expose_the_optimization(self):
        plan, config = _lower(_config(executor="serial"))
        optimized = optimize_plan(plan, config)
        block = optimized.as_dict()["optimization"]
        assert block["optimized"] is True
        assert block["units"] == {
            "visible+thermal+fuse": ["visible", "thermal", "fuse"]}
        assert block["scratch"] is True
        assert len(block["passes"]) == 3
        text = optimized.describe()
        assert "fused units" in text and "scratch pool" in text

    def test_unoptimized_plan_reports_nothing(self):
        plan, _ = _lower(_config())
        block = plan.as_dict()["optimization"]
        assert block["optimized"] is False
        assert block["passes"] == []

    def test_empty_pipeline_still_stamps_optimized(self):
        plan, config = _lower(_config())
        out = PassPipeline(()).run(plan, config)
        assert out.optimized and out.pass_reports == ()

    def test_default_pipeline_order_is_stable(self):
        names = [p.name for p in default_pipeline().passes]
        assert names == ["fuse-stages", "eliminate-materialization",
                         "hoist-invariants"]


class TestOptimizedSessions:
    """End-to-end: config.optimize drives the same bits, faster."""

    @pytest.mark.parametrize("executor", ("serial", "pipeline",
                                          "hetero", "batch"))
    def test_bitwise_parity_and_energy_balance(self, executor):
        pairs = _pairs()
        kw = dict(executor=executor, workers=2, batch_size=3,
                  keep_records=True)
        with FusionSession(_config(**kw)) as plain:
            ref = plain.run(len(pairs), source=iter(list(pairs)))
        with FusionSession(_config(optimize=True, **kw)) as tuned:
            assert tuned.plan.optimized
            got = tuned.run(len(pairs), source=iter(list(pairs)))
        assert ref.model_millijoules_total == got.model_millijoules_total
        assert ref.model_seconds_total == got.model_seconds_total
        for a, b in zip(ref.records, got.records):
            assert np.array_equal(a.frame.pixels, b.frame.pixels)

    def test_tap_cache_enabled_on_optimized_sessions_only(self):
        with FusionSession(_config()) as plain:
            backend = plain._fusers["arm"].transform.backend
            assert not backend.tap_cache_enabled
        with FusionSession(_config(optimize=True)) as tuned:
            backend = tuned._fusers["arm"].transform.backend
            assert backend.tap_cache_enabled

    def test_stage_wall_attribution_reaches_the_report(self):
        pairs = _pairs()
        with FusionSession(_config(optimize=True)) as session:
            report = session.run(len(pairs), source=iter(list(pairs)))
        wall = report.throughput["stage_wall_s"]
        assert "ingest" in wall and "finalize" in wall
        assert "visible+thermal+fuse" in wall
        assert all(v > 0 for v in wall.values())

    def test_stage_wall_keys_follow_the_executor(self):
        pairs = _pairs()
        with FusionSession(_config(executor="batch", batch_size=2,
                                   optimize=True)) as session:
            report = session.run(len(pairs), source=iter(list(pairs)))
        assert "batch-core" in report.throughput["stage_wall_s"]

    def test_process_uses_the_scratch_pool(self):
        pairs = _pairs(2)
        with FusionSession(_config(optimize=True)) as session:
            session.process(*pairs[0])
            assert len(session._processor._scratch) == 1
            before = session._processor._scratch.nbytes
            session.process(*pairs[1])
            # steady state: the second frame reuses the pooled buffer
            assert session._processor._scratch.nbytes == before
