"""Filter-bank construction: the defining identities must hold exactly."""

import math

import numpy as np
import pytest

from repro.dtcwt import coeffs
from repro.dtcwt.util import group_delay, is_orthonormal_filter
from repro.errors import ConfigurationError, TransformError


class TestBiorthogonalBank:
    def test_cdf97_matches_jpeg2000_analysis_taps(self):
        """The construction must land on the canonical CDF 9/7 values."""
        bank = coeffs.biorthogonal_bank("cdf97")
        # canonical irreversible 9/7 analysis low-pass, DC gain sqrt(2)
        reference = np.array([
            0.026748757411, -0.016864118443, -0.078223266529,
            0.266864118443, 0.602949018236, 0.266864118443,
            -0.078223266529, -0.016864118443, 0.026748757411,
        ]) * math.sqrt(2.0)
        assert np.allclose(bank.h0, reference, atol=1e-9)

    def test_cdf97_lengths(self):
        bank = coeffs.biorthogonal_bank("cdf97")
        assert len(bank.h0) == 9
        assert len(bank.g0) == 7
        assert len(bank.h1) == 7
        assert len(bank.g1) == 9

    def test_legall53_lengths(self):
        bank = coeffs.biorthogonal_bank("legall53")
        assert len(bank.h0) == 5
        assert len(bank.g0) == 3

    @pytest.mark.parametrize("name", ["cdf97", "legall53"])
    def test_pr_identity(self, name):
        """H0*G0 + H1*G1 == 2 over the whole frequency axis."""
        bank = coeffs.biorthogonal_bank(name)
        bank.validate(tol=1e-9)  # raises on violation

    @pytest.mark.parametrize("name", ["cdf97", "legall53"])
    def test_dc_gain(self, name):
        bank = coeffs.biorthogonal_bank(name)
        assert np.isclose(np.sum(bank.h0), math.sqrt(2.0))
        assert np.isclose(np.sum(bank.g0), math.sqrt(2.0))

    @pytest.mark.parametrize("name", ["cdf97", "legall53"])
    def test_highpass_kills_dc(self, name):
        bank = coeffs.biorthogonal_bank(name)
        assert abs(np.sum(bank.h1)) < 1e-9
        assert abs(np.sum(bank.g1)) < 1e-9

    def test_filters_symmetric(self):
        bank = coeffs.biorthogonal_bank("cdf97")
        assert np.allclose(bank.h0, bank.h0[::-1])
        assert np.allclose(bank.g0, bank.g0[::-1])

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            coeffs.biorthogonal_bank("haar99")

    def test_centers(self):
        bank = coeffs.biorthogonal_bank("cdf97")
        assert bank.c_h0 == 4
        assert bank.c_g0 == 3

    def test_even_length_rejected(self):
        with pytest.raises(ConfigurationError):
            coeffs.BiorthogonalBank(name="bad",
                                    h0=np.ones(4), g0=np.ones(3))


class TestQshiftBank:
    @pytest.mark.parametrize("length", [10, 12, 14, 16])
    def test_orthonormal_both_trees(self, length):
        bank = coeffs.qshift_bank(length)
        assert is_orthonormal_filter(bank.h0a, tol=1e-7)
        assert is_orthonormal_filter(bank.h0b, tol=1e-7)

    @pytest.mark.parametrize("length", [10, 12, 14, 16])
    def test_half_sample_delay_difference(self, length):
        bank = coeffs.qshift_bank(length)
        assert abs(abs(bank.delay_difference) - 0.5) < 0.05

    @pytest.mark.parametrize("length", [12, 14])
    def test_magnitude_responses_match(self, length):
        """|H_a| == |H_b| — both trees see identical subband gains."""
        bank = coeffs.qshift_bank(length)
        omegas = np.linspace(0, np.pi, 257)
        n = np.arange(length)
        resp = np.exp(-1j * np.outer(omegas, n))
        mag_a = np.abs(resp @ bank.h0a)
        mag_b = np.abs(resp @ bank.h0b)
        assert np.allclose(mag_a, mag_b, atol=1e-9)

    def test_highpass_modulation(self):
        bank = coeffs.qshift_bank(14)
        assert abs(np.sum(bank.h1a)) < 1e-9  # kills DC
        assert is_orthonormal_filter(bank.h1a, tol=1e-7)
        assert len(bank.h1a) == 14

    def test_dc_gain(self):
        bank = coeffs.qshift_bank(14)
        assert np.isclose(np.sum(bank.h0a), math.sqrt(2.0))
        assert np.isclose(np.sum(bank.h0b), math.sqrt(2.0))

    def test_odd_length_rejected(self):
        with pytest.raises(ConfigurationError):
            coeffs.qshift_bank(13)

    def test_unsupported_length_rejected(self):
        with pytest.raises(ConfigurationError):
            coeffs.qshift_bank(6)

    def test_bank_is_cached(self):
        assert coeffs.qshift_bank(14) is coeffs.qshift_bank(14)

    def test_group_delay_flat_over_passband(self):
        bank = coeffs.qshift_bank(14)
        omegas = np.linspace(0.05 * np.pi, 0.45 * np.pi, 64)
        delays = group_delay(bank.h0a, omegas)
        assert float(np.nanstd(delays)) < 0.3


class TestThiranFactor:
    def test_halfsample_allpass_delay(self):
        """The allpass built from D must delay by ~0.5 samples at DC."""
        for order in (2, 3, 4, 5):
            d = coeffs.thiran_halfsample_factor(order)
            omegas = np.linspace(0.01, 0.3 * np.pi, 50)
            n = np.arange(order + 1)
            resp = np.exp(-1j * np.outer(omegas, n))
            ratio = (resp @ d[::-1]) / (resp @ d)
            phase = np.unwrap(np.angle(ratio))
            delay = -np.gradient(phase, omegas)
            assert abs(delay[0] - 0.5) < 0.02

    def test_order_validation(self):
        with pytest.raises(ConfigurationError):
            coeffs.thiran_halfsample_factor(0)


class TestDwtFilter:
    @pytest.mark.parametrize("length", [4, 6, 8, 10])
    def test_orthonormal(self, length):
        taps = coeffs.orthonormal_dwt_filter(length)
        assert is_orthonormal_filter(taps, tol=1e-7)
        assert len(taps) == length

    def test_db2_is_exact(self):
        """Length 4 must reproduce the closed-form Daubechies D4."""
        taps = coeffs.orthonormal_dwt_filter(4)
        s3 = math.sqrt(3.0)
        reference = np.array([1 + s3, 3 + s3, 3 - s3, 1 - s3]) / (4 * math.sqrt(2))
        # min-phase factor may be time-reversed relative to the textbook
        assert (np.allclose(taps, reference, atol=1e-9)
                or np.allclose(taps, reference[::-1], atol=1e-9))

    def test_odd_length_rejected(self):
        with pytest.raises(ConfigurationError):
            coeffs.orthonormal_dwt_filter(7)


class TestDtcwtBanks:
    def test_default_banks(self):
        banks = coeffs.dtcwt_banks()
        assert banks.level1.name == "cdf97"
        assert banks.qshift.length == 14
        assert banks.max_taps == 14

    def test_paper_hardware_configuration(self):
        """The paper's 12-tap engine configuration must construct."""
        banks = coeffs.dtcwt_banks(qshift_length=12)
        assert banks.qshift.length == 12

    def test_halfband_remainder_coeffs(self):
        assert list(coeffs.halfband_remainder_coeffs(1)) == [1]
        assert list(coeffs.halfband_remainder_coeffs(4)) == [1, 4, 10, 20]
        with pytest.raises(ConfigurationError):
            coeffs.halfband_remainder_coeffs(0)
