"""Filter characterization utilities."""

import numpy as np
import pytest

from repro.dtcwt import biorthogonal_bank, dtcwt_banks, qshift_bank
from repro.dtcwt.filter_analysis import (
    characterize,
    frequency_response,
    magnitude_match_error,
    pr_identity_error,
    stopband_attenuation_db,
    vanishing_moments,
)


class TestFrequencyResponse:
    def test_dc_gain(self):
        banks = dtcwt_banks()
        _, response = frequency_response(banks.qshift.h0a)
        assert np.isclose(abs(response[0]), np.sqrt(2.0), atol=1e-9)

    def test_nyquist_null_for_lowpass(self):
        banks = dtcwt_banks()
        _, response = frequency_response(banks.qshift.h0a)
        assert abs(response[-1]) < 1e-6


class TestVanishingMoments:
    def test_cdf97_has_four(self):
        bank = biorthogonal_bank("cdf97")
        assert vanishing_moments(bank.h0, at=-1.0) == 4
        assert vanishing_moments(bank.g0, at=-1.0) == 4

    def test_legall_has_two(self):
        bank = biorthogonal_bank("legall53")
        assert vanishing_moments(bank.h0, at=-1.0) == 2

    def test_highpass_moments_at_plus_one(self):
        bank = biorthogonal_bank("cdf97")
        assert vanishing_moments(bank.h1, at=1.0) == 4

    def test_qshift_moments_match_design(self):
        # the default 14-tap design uses J=2 binomial zeros
        assert vanishing_moments(qshift_bank(14).h0a, at=-1.0) == 2

    def test_no_zero_counts_zero(self):
        assert vanishing_moments(np.array([1.0, 0.5, 0.25]), at=-1.0) == 0


class TestStopband:
    def test_longer_filters_reject_more(self):
        short = stopband_attenuation_db(qshift_bank(10).h0a)
        longer = stopband_attenuation_db(qshift_bank(16).h0a)
        assert longer > short

    def test_reasonable_attenuation(self):
        assert stopband_attenuation_db(qshift_bank(14).h0a) > 15.0


class TestCharacterization:
    def test_summary_values(self):
        summary = characterize()
        assert summary.level1_moments_analysis == 4
        assert summary.qshift_length == 14
        assert abs(abs(summary.qshift_delay_difference) - 0.5) < 0.01
        assert summary.qshift_delay_ripple < 0.2
        assert set(summary.as_dict()) >= {"qshift_delay_difference",
                                          "qshift_stopband_db"}

    def test_magnitude_match_is_machine_precision(self):
        assert magnitude_match_error(dtcwt_banks().qshift) < 1e-12

    def test_pr_identity_is_machine_precision(self):
        assert pr_identity_error(dtcwt_banks().level1) < 1e-12

    def test_characterize_paper_hardware_banks(self):
        summary = characterize(dtcwt_banks(qshift_length=12))
        assert summary.qshift_length == 12
        assert abs(abs(summary.qshift_delay_difference) - 0.5) < 0.05
