"""Batch-first transforms: bitwise parity, stack semantics, edge cases."""

import numpy as np
import pytest

from repro.dtcwt import Dtcwt2D, DtcwtPyramidStack
from repro.dtcwt.backend import NumpyBackend
from repro.dtcwt.util import as_float_stack, crop_to, pad_to_multiple
from repro.errors import TransformError
from repro.hw.registry import create_engine


def frame_stack(rng, n=4, shape=(40, 40)):
    return rng.standard_normal((n,) + shape) * 40.0 + 100.0


class TestForwardBatchParity:
    """The tentpole invariant: batched == per-frame, bit for bit."""

    @pytest.mark.parametrize("engine_name", ["arm", "neon", "fpga"])
    def test_bitwise_identical_to_per_frame(self, rng, engine_name):
        frames = frame_stack(rng, n=3)
        engine = create_engine(engine_name)
        batched = engine.transform(levels=2).forward_batch(frames)
        serial = engine.transform(levels=2)
        for i in range(3):
            pyr = serial.forward(frames[i])
            got = batched[i]
            assert np.array_equal(pyr.lowpass, got.lowpass)
            for a, b in zip(pyr.highpasses, got.highpasses):
                assert np.array_equal(a, b)

    @pytest.mark.parametrize("engine_name", ["arm", "neon", "fpga"])
    def test_inverse_batch_bitwise_identical(self, rng, engine_name):
        frames = frame_stack(rng, n=3)
        engine = create_engine(engine_name)
        t = engine.transform(levels=2)
        stack = t.forward_batch(frames)
        rec_stack = t.inverse_batch(stack)
        serial = engine.transform(levels=2)
        for i in range(3):
            rec = serial.inverse(serial.forward(frames[i]))
            assert np.array_equal(rec, rec_stack[i])

    def test_roundtrip_default_backend(self, rng):
        frames = frame_stack(rng, n=5, shape=(48, 64))
        t = Dtcwt2D(levels=3)
        rec = t.inverse_batch(t.forward_batch(frames))
        assert rec.shape == frames.shape
        assert np.max(np.abs(rec - frames)) < 1e-9

    def test_odd_sizes_pad_and_crop(self, rng):
        frames = rng.standard_normal((3, 35, 35))
        t = Dtcwt2D(levels=3)
        stack = t.forward_batch(frames)
        rec = t.inverse_batch(stack)
        assert rec.shape == (3, 35, 35)
        assert np.max(np.abs(rec - frames)) < 1e-9

    def test_single_frame_batch_matches_forward(self, rng):
        frame = rng.standard_normal((40, 40))
        t = Dtcwt2D(levels=2)
        pyr = t.forward(frame)
        stack = t.forward_batch(frame[None])
        assert len(stack) == 1
        assert np.array_equal(stack[0].lowpass, pyr.lowpass)

    def test_float32_backend_stays_float32(self, rng):
        frames = frame_stack(rng, n=2).astype(np.float32)
        t = Dtcwt2D(levels=2, backend=NumpyBackend(dtype=np.float32))
        rec = t.inverse_batch(t.forward_batch(frames))
        assert rec.dtype == np.float32


class TestPyramidStack:
    def test_shapes_and_count(self, rng):
        stack = Dtcwt2D(levels=3).forward_batch(frame_stack(rng, n=4,
                                                            shape=(72, 88)))
        assert stack.count == len(stack) == 4
        assert stack.lowpass.shape == (2, 2, 4, 9, 11)
        assert [h.shape for h in stack.highpasses] == [
            (6, 4, 36, 44), (6, 4, 18, 22), (6, 4, 9, 11)]

    def test_getitem_is_a_view(self, rng):
        stack = Dtcwt2D(levels=2).forward_batch(frame_stack(rng))
        frame = stack[1]
        frame.highpasses[0][:] = 0
        assert np.max(np.abs(stack.highpasses[0][:, 1])) == 0

    def test_getitem_bounds(self, rng):
        stack = Dtcwt2D(levels=2).forward_batch(frame_stack(rng, n=2))
        with pytest.raises(TransformError):
            stack[2]
        with pytest.raises(IndexError):
            stack[2]  # also an IndexError: iteration terminates cleanly
        assert stack[-1].lowpass.shape == stack[0].lowpass.shape

    def test_stack_is_iterable(self, rng):
        stack = Dtcwt2D(levels=2).forward_batch(frame_stack(rng, n=3))
        pyramids = list(stack)
        assert len(pyramids) == 3
        assert all(p.levels == 2 for p in pyramids)

    def test_slice_views_a_frame_range(self, rng):
        frames = frame_stack(rng, n=6)
        stack = Dtcwt2D(levels=2).forward_batch(frames)
        sub = stack.slice(2, 5)
        assert sub.count == 3
        assert np.array_equal(sub.lowpass, stack.lowpass[:, :, 2:5])

    def test_from_pyramids_round_trips(self, rng):
        frames = frame_stack(rng, n=3)
        t = Dtcwt2D(levels=2)
        pyramids = [t.forward(f) for f in frames]
        stack = DtcwtPyramidStack.from_pyramids(pyramids)
        assert stack.count == 3
        for i, pyr in enumerate(pyramids):
            assert np.array_equal(stack[i].lowpass, pyr.lowpass)
            for a, b in zip(stack[i].highpasses, pyr.highpasses):
                assert np.array_equal(a, b)

    def test_from_pyramids_rejects_mismatch(self, rng):
        t2, t3 = Dtcwt2D(levels=2), Dtcwt2D(levels=3)
        x = rng.standard_normal((32, 32))
        with pytest.raises(TransformError):
            DtcwtPyramidStack.from_pyramids([t2.forward(x), t3.forward(x)])
        with pytest.raises(TransformError):
            DtcwtPyramidStack.from_pyramids([])

    def test_copy_is_deep(self, rng):
        stack = Dtcwt2D(levels=1).forward_batch(frame_stack(rng, n=2,
                                                            shape=(16, 16)))
        dup = stack.copy()
        dup.highpasses[0][:] = 0
        assert np.max(np.abs(stack.highpasses[0])) > 0

    def test_level_mismatch_raises(self, rng):
        stack = Dtcwt2D(levels=2).forward_batch(frame_stack(rng, n=2))
        with pytest.raises(TransformError):
            Dtcwt2D(levels=3).inverse_batch(stack)


class TestStackValidation:
    def test_rejects_2d_and_4d(self, rng):
        t = Dtcwt2D(levels=2)
        with pytest.raises(TransformError):
            t.forward_batch(rng.standard_normal((32, 32)))
        with pytest.raises(TransformError):
            t.forward_batch(rng.standard_normal((2, 2, 32, 32)))

    def test_rejects_empty_stack(self):
        with pytest.raises(TransformError):
            as_float_stack(np.empty((0, 8, 8)))

    def test_accepts_frame_lists(self, rng):
        frames = [rng.standard_normal((16, 16)) for _ in range(3)]
        assert Dtcwt2D(levels=1).forward_batch(frames).count == 3


class TestPolymorphicUtils:
    def test_pad_to_multiple_stacked_equals_per_frame(self, rng):
        frames = rng.standard_normal((3, 35, 37))
        padded, original = pad_to_multiple(frames, 8)
        assert original == (35, 37)
        assert padded.shape == (3, 40, 40)
        for i in range(3):
            alone, _ = pad_to_multiple(frames[i], 8)
            assert np.array_equal(padded[i], alone)

    def test_crop_to_trailing_axes(self, rng):
        frames = rng.standard_normal((3, 40, 40))
        cropped = crop_to(frames, (35, 37))
        assert cropped.shape == (3, 35, 37)
