"""2-D DT-CWT: perfect reconstruction, structure, unitarity, edge cases."""

import numpy as np
import pytest

from repro.dtcwt import Dtcwt2D, dtcwt_banks
from repro.dtcwt.backend import NumpyBackend
from repro.dtcwt.transform2d import ORIENTATIONS, c2q, q2c
from repro.errors import TransformError


class TestPerfectReconstruction:
    @pytest.mark.parametrize("shape", [(72, 88), (24, 32), (40, 40), (48, 64)])
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_roundtrip(self, rng, shape, levels):
        x = rng.standard_normal(shape)
        t = Dtcwt2D(levels=levels)
        assert np.max(np.abs(t.inverse(t.forward(x)) - x)) < 1e-10

    def test_odd_sizes_pad_and_crop(self, rng):
        x = rng.standard_normal((35, 35))
        t = Dtcwt2D(levels=3)
        rec = t.inverse(t.forward(x))
        assert rec.shape == (35, 35)
        assert np.max(np.abs(rec - x)) < 1e-10

    def test_constant_image(self):
        x = np.full((32, 32), 7.0)
        t = Dtcwt2D(levels=2)
        pyr = t.forward(x)
        # a constant image has (almost) no high-pass energy
        for band in pyr.highpasses:
            assert np.max(np.abs(band)) < 1e-9
        assert np.max(np.abs(t.inverse(pyr) - x)) < 1e-10

    def test_float32_backend_roundtrip(self, rng):
        x = rng.standard_normal((24, 32)).astype(np.float32)
        t = Dtcwt2D(levels=3, backend=NumpyBackend(dtype=np.float32))
        rec = t.inverse(t.forward(x))
        assert rec.dtype == np.float32
        assert np.max(np.abs(rec - x)) < 1e-4

    def test_12tap_paper_banks_roundtrip(self, rng):
        x = rng.standard_normal((40, 40))
        t = Dtcwt2D(levels=3, banks=dtcwt_banks(qshift_length=12))
        assert np.max(np.abs(t.inverse(t.forward(x)) - x)) < 1e-10

    def test_legall_banks_roundtrip(self, rng):
        x = rng.standard_normal((32, 32))
        t = Dtcwt2D(levels=2, banks=dtcwt_banks(level1="legall53"))
        assert np.max(np.abs(t.inverse(t.forward(x)) - x)) < 1e-10


class TestPyramidStructure:
    def test_band_shapes(self, rng):
        x = rng.standard_normal((72, 88))
        pyr = Dtcwt2D(levels=3).forward(x)
        assert [h.shape for h in pyr.highpasses] == [
            (6, 36, 44), (6, 18, 22), (6, 9, 11)]
        assert pyr.lowpass.shape == (2, 2, 9, 11)
        assert pyr.levels == 3
        assert pyr.original_shape == (72, 88)

    def test_bands_are_complex(self, rng):
        pyr = Dtcwt2D(levels=2).forward(rng.standard_normal((32, 32)))
        for band in pyr.highpasses:
            assert np.iscomplexobj(band)

    def test_orientation_count(self):
        assert len(ORIENTATIONS) == 6

    def test_total_coefficients(self, rng):
        pyr = Dtcwt2D(levels=2).forward(rng.standard_normal((32, 32)))
        expected = (6 * 16 * 16) + (6 * 8 * 8) + (4 * 8 * 8)
        assert pyr.total_coefficients == expected

    def test_copy_is_deep(self, rng):
        pyr = Dtcwt2D(levels=1).forward(rng.standard_normal((16, 16)))
        dup = pyr.copy()
        dup.highpasses[0][:] = 0
        assert np.max(np.abs(pyr.highpasses[0])) > 0

    def test_level_mismatch_raises(self, rng):
        t2, t3 = Dtcwt2D(levels=2), Dtcwt2D(levels=3)
        pyr = t2.forward(rng.standard_normal((32, 32)))
        with pytest.raises(TransformError):
            t3.inverse(pyr)

    def test_bad_levels_raises(self):
        with pytest.raises(TransformError):
            Dtcwt2D(levels=0)


class TestQ2C:
    def test_roundtrip_exact(self, rng):
        quads = [rng.standard_normal((8, 8)) for _ in range(4)]
        z_pos, z_neg = q2c(*quads)
        back = c2q(z_pos, z_neg)
        for original, recovered in zip(quads, back):
            assert np.allclose(original, recovered)

    def test_unitary(self, rng):
        """q2c preserves energy (it is an orthonormal change of basis)."""
        quads = [rng.standard_normal((8, 8)) for _ in range(4)]
        z_pos, z_neg = q2c(*quads)
        energy_in = sum(float(np.sum(q ** 2)) for q in quads)
        energy_out = float(np.sum(np.abs(z_pos) ** 2 + np.abs(z_neg) ** 2))
        assert np.isclose(energy_in, energy_out)


class TestLinearity:
    def test_transform_is_linear(self, rng):
        t = Dtcwt2D(levels=2)
        x = rng.standard_normal((32, 32))
        y = rng.standard_normal((32, 32))
        pyr_sum = t.forward(2.0 * x + 3.0 * y)
        pyr_x = t.forward(x)
        pyr_y = t.forward(y)
        for level in range(2):
            combined = 2.0 * pyr_x.highpasses[level] + 3.0 * pyr_y.highpasses[level]
            assert np.allclose(pyr_sum.highpasses[level], combined, atol=1e-10)

    def test_energy_conservation(self, rng):
        """Level-1 redundancy is exactly 4x; the transform's total energy
        relates to the input through the tight frame property."""
        t = Dtcwt2D(levels=3)
        x = rng.standard_normal((64, 64))
        pyr = t.forward(x)
        total = (float(np.sum(np.abs(pyr.lowpass) ** 2))
                 + sum(float(np.sum(np.abs(h) ** 2)) for h in pyr.highpasses))
        input_energy = float(np.sum(x ** 2))
        # 4:1 redundant tight-ish frame: energy close to 4x input energy
        assert 3.5 * input_energy < total < 4.5 * input_energy


class TestShiftInvariance:
    """The property that justifies the DT-CWT in the paper (Section III)."""

    @staticmethod
    def _band_energy_cv(transform, image, level, axis):
        energies = []
        for shift in range(8):
            pyr = transform.forward(np.roll(image, shift, axis=axis))
            energies.append(float(np.sum(np.abs(pyr.highpasses[level]) ** 2)))
        energies = np.asarray(energies)
        return float(energies.std() / energies.mean())

    def test_dtcwt_much_more_stable_than_dwt(self):
        from repro.dtcwt import Dwt2D
        yy, xx = np.mgrid[0:64, 0:64]
        image = np.exp(-((yy - 32) ** 2) / 18.0) * np.cos(0.4 * xx)

        t_cplx = Dtcwt2D(levels=3)
        cv_dtcwt = self._band_energy_cv(t_cplx, image, level=2, axis=0)

        t_real = Dwt2D(levels=3)
        energies = []
        for shift in range(8):
            pyr = t_real.forward(np.roll(image, shift, axis=0))
            energies.append(float(np.sum(pyr.details[2] ** 2)))
        energies = np.asarray(energies)
        cv_dwt = float(energies.std() / energies.mean())

        assert cv_dtcwt < 0.02, f"DT-CWT shift CV too high: {cv_dtcwt}"
        assert cv_dtcwt < cv_dwt / 20.0, (
            f"DT-CWT ({cv_dtcwt:.4f}) should be far more stable "
            f"than DWT ({cv_dwt:.4f})"
        )

    def test_shift_by_full_period_is_exact(self, rng):
        """Shifting by 2^levels samples permutes coefficients exactly."""
        t = Dtcwt2D(levels=2)
        x = rng.standard_normal((32, 32))
        base = t.forward(x)
        shifted = t.forward(np.roll(x, 4, axis=0))
        rolled = np.roll(base.highpasses[1], 1, axis=1)
        assert np.allclose(np.abs(shifted.highpasses[1]),
                           np.abs(rolled), atol=1e-9)


class TestOrientationSelectivity:
    def test_oriented_gratings_excite_distinct_bands(self):
        """+45 and -45 degree gratings must energize different subbands —
        the directionality that separates DT-CWT from the real DWT."""
        yy, xx = np.mgrid[0:64, 0:64]
        plus45 = np.cos(0.8 * (xx + yy))
        minus45 = np.cos(0.8 * (xx - yy))
        t = Dtcwt2D(levels=2)

        def band_energies(img):
            pyr = t.forward(img)
            return np.array([float(np.sum(np.abs(pyr.highpasses[0][b]) ** 2))
                             for b in range(6)])

        e_plus = band_energies(plus45)
        e_minus = band_energies(minus45)
        assert int(np.argmax(e_plus)) != int(np.argmax(e_minus))
        # each grating concentrates energy: dominant band >= 2x the median
        for energies in (e_plus, e_minus):
            assert energies.max() > 2.0 * np.median(energies)
