"""Kernel backend primitives: dual-channel ops against direct math."""

import numpy as np
import pytest

from repro.dtcwt.backend import NumpyBackend
from repro.dtcwt.coeffs import dtcwt_banks
from repro.dtcwt.util import cconv, cconv_causal, ccorr_causal, downsample2, upsample2


@pytest.fixture
def backend():
    return NumpyBackend()


@pytest.fixture
def banks():
    return dtcwt_banks()


class TestAnalysisU:
    def test_matches_single_channel_convs(self, rng, backend, banks):
        x = rng.standard_normal((16, 20))
        bank = banks.level1
        lo, hi = backend.analysis_u(x, bank.h0, bank.c_h0,
                                    bank.h1, bank.c_h1, axis=1)
        assert np.allclose(lo, cconv(x, bank.h0, bank.c_h0, axis=1))
        assert np.allclose(hi, cconv(x, bank.h1, bank.c_h1, axis=1))

    def test_output_shapes_undecimated(self, rng, backend, banks):
        x = rng.standard_normal((16, 20))
        bank = banks.level1
        lo, hi = backend.analysis_u(x, bank.h0, bank.c_h0,
                                    bank.h1, bank.c_h1, axis=0)
        assert lo.shape == hi.shape == x.shape


class TestAnalysisD:
    def test_matches_causal_conv_downsample(self, rng, backend, banks):
        x = rng.standard_normal((16, 24))
        h0 = banks.qshift.h0a
        h1 = banks.qshift.h1a
        lo, hi = backend.analysis_d(x, h0, h1, axis=1)
        assert np.allclose(lo, downsample2(cconv_causal(x, h0, 1), 0, 1))
        assert np.allclose(hi, downsample2(cconv_causal(x, h1, 1), 0, 1))

    def test_halves_the_axis(self, rng, backend, banks):
        x = rng.standard_normal((16, 24))
        lo, hi = backend.analysis_d(x, banks.qshift.h0a, banks.qshift.h1a,
                                    axis=0)
        assert lo.shape == (8, 24)
        assert hi.shape == (8, 24)


class TestSynthesisD:
    def test_is_adjoint_of_analysis(self, rng, backend, banks):
        """<analysis(x), (u,v)> == <x, synthesis(u,v)> — the transpose
        relation that makes decimated PR structural."""
        h0, h1 = banks.qshift.h0a, banks.qshift.h1a
        x = rng.standard_normal(32)
        u = rng.standard_normal(16)
        v = rng.standard_normal(16)
        lo, hi = backend.analysis_d(x, h0, h1, axis=0)
        lhs = float(np.dot(lo, u) + np.dot(hi, v))
        rhs = float(np.dot(x, backend.synthesis_d(u, v, h0, h1, axis=0)))
        assert np.isclose(lhs, rhs)

    def test_pr_single_level_1d(self, rng, backend, banks):
        h0, h1 = banks.qshift.h0a, banks.qshift.h1a
        x = rng.standard_normal(64)
        lo, hi = backend.analysis_d(x, h0, h1, axis=0)
        rec = backend.synthesis_d(lo, hi, h0, h1, axis=0)
        assert np.allclose(rec, x, atol=1e-10)


class TestSynthesisU:
    def test_level1_pr_identity_1d(self, rng, backend, banks):
        """synthesis_u(analysis_u(x)) == 2x (the H0G0+H1G1=2 identity)."""
        bank = banks.level1
        x = rng.standard_normal(48)
        u0, u1 = backend.analysis_u(x, bank.h0, bank.c_h0,
                                    bank.h1, bank.c_h1, axis=0)
        rec = backend.synthesis_u(u0, u1, bank.g0, bank.c_g0,
                                  bank.g1, bank.c_g1, axis=0)
        assert np.allclose(rec, 2.0 * x, atol=1e-10)


class TestDtypes:
    def test_float32_backend_outputs_float32(self, rng, banks):
        be = NumpyBackend(dtype=np.float32)
        x = rng.standard_normal((8, 8))
        lo, hi = be.analysis_d(x, banks.qshift.h0a, banks.qshift.h1a, axis=0)
        assert lo.dtype == np.float32
        assert hi.dtype == np.float32
