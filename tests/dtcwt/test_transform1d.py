"""1-D DT-CWT: reconstruction, analyticity, phase behaviour."""

import numpy as np
import pytest

from repro.dtcwt import (
    Dtcwt1D,
    analytic_quality,
    dtcwt_banks,
    equivalent_complex_wavelet,
)
from repro.errors import TransformError


class TestRoundtrip:
    @pytest.mark.parametrize("length", [64, 128, 256])
    @pytest.mark.parametrize("levels", [1, 2, 3])
    def test_pr(self, rng, length, levels):
        x = rng.standard_normal(length)
        t = Dtcwt1D(levels=levels)
        assert np.max(np.abs(t.inverse(t.forward(x)) - x)) < 1e-10

    def test_band_lengths_halve(self, rng):
        p = Dtcwt1D(levels=3).forward(rng.standard_normal(128))
        assert [len(h) for h in p.highpasses] == [64, 32, 16]
        assert p.lowpass.shape == (2, 16)

    def test_indivisible_length_rejected(self, rng):
        with pytest.raises(TransformError):
            Dtcwt1D(levels=3).forward(rng.standard_normal(100))

    def test_2d_input_rejected(self, rng):
        with pytest.raises(TransformError):
            Dtcwt1D().forward(rng.standard_normal((8, 8)))

    def test_level_mismatch(self, rng):
        p = Dtcwt1D(levels=2).forward(rng.standard_normal(64))
        with pytest.raises(TransformError):
            Dtcwt1D(levels=3).inverse(p)

    def test_constant_signal_has_no_highpass(self):
        p = Dtcwt1D(levels=2).forward(np.full(64, 3.0))
        for band in p.highpasses:
            assert np.max(np.abs(band)) < 1e-9


class TestAnalyticity:
    """The q-shift property delivers (nearly) one-sided spectra."""

    @pytest.mark.parametrize("level", [2, 3, 4])
    def test_negative_frequency_energy_tiny(self, level):
        q = analytic_quality(level=level, length=256)
        assert q < 0.01  # real wavelet would score 0.5

    def test_wavelet_is_complex_and_compact(self):
        psi = equivalent_complex_wavelet(level=3, length=256)
        assert np.iscomplexobj(psi)
        assert np.sum(np.abs(psi) > 1e-9) < 128  # compact support-ish

    def test_12tap_paper_bank_also_analytic(self):
        banks = dtcwt_banks(qshift_length=12)
        assert analytic_quality(level=3, length=256, banks=banks) < 0.02


class TestShiftBehaviour:
    def test_magnitude_nearly_shift_invariant(self, rng):
        t = Dtcwt1D(levels=3)
        # a smooth bump avoids broadband leakage in the comparison
        x = np.exp(-((np.arange(128) - 64) ** 2) / 18.0)
        energies = []
        for shift in range(8):
            p = t.forward(np.roll(x, shift))
            energies.append(float(np.sum(np.abs(p.highpasses[2]) ** 2)))
        energies = np.array(energies)
        assert energies.std() / energies.mean() < 0.02

    def test_phase_rotates_with_subsample_position(self):
        """The coefficient phase encodes feature position: shifting the
        input advances the phase of the dominant coefficient."""
        t = Dtcwt1D(levels=2)
        x = np.exp(-((np.arange(64) - 32) ** 2) / 8.0)
        p0 = t.forward(x)
        p1 = t.forward(np.roll(x, 1))
        band0 = p0.highpasses[1]
        band1 = p1.highpasses[1]
        k = int(np.argmax(np.abs(band0)))
        delta = np.angle(band1[k] / band0[k])
        assert abs(delta) > 0.05  # phase moved
        assert np.isclose(np.abs(band1[k]), np.abs(band0[k]), rtol=0.2)
