"""Classic DWT baseline: reconstruction, structure, Fig. 1 mosaic."""

import numpy as np
import pytest

from repro.dtcwt import Dwt2D, subband_mosaic
from repro.errors import TransformError


class TestDwtRoundtrip:
    @pytest.mark.parametrize("levels", [1, 2, 3])
    @pytest.mark.parametrize("shape", [(32, 32), (48, 64), (24, 40)])
    def test_pr(self, rng, levels, shape):
        x = rng.standard_normal(shape)
        t = Dwt2D(levels=levels)
        assert np.max(np.abs(t.inverse(t.forward(x)) - x)) < 1e-10

    @pytest.mark.parametrize("filter_length", [4, 6, 8])
    def test_pr_across_filters(self, rng, filter_length):
        x = rng.standard_normal((32, 32))
        t = Dwt2D(levels=2, filter_length=filter_length)
        assert np.max(np.abs(t.inverse(t.forward(x)) - x)) < 1e-10

    def test_orthonormal_energy_preservation(self, rng):
        """Critically-sampled orthonormal DWT preserves energy exactly."""
        x = rng.standard_normal((32, 32))
        pyr = Dwt2D(levels=3).forward(x)
        total = float(np.sum(pyr.lowpass ** 2)) + sum(
            float(np.sum(d ** 2)) for d in pyr.details)
        assert np.isclose(total, float(np.sum(x ** 2)))

    def test_level_mismatch_raises(self, rng):
        pyr = Dwt2D(levels=2).forward(rng.standard_normal((32, 32)))
        with pytest.raises(TransformError):
            Dwt2D(levels=3).inverse(pyr)

    def test_bad_levels(self):
        with pytest.raises(TransformError):
            Dwt2D(levels=0)


class TestStructure:
    def test_detail_shapes_follow_fig1(self, rng):
        """Each level's sub-bands halve the frame (paper Fig. 1)."""
        pyr = Dwt2D(levels=3).forward(rng.standard_normal((64, 64)))
        assert [d.shape for d in pyr.details] == [
            (3, 32, 32), (3, 16, 16), (3, 8, 8)]
        assert pyr.lowpass.shape == (8, 8)

    def test_details_stack_order(self, rng):
        """The (LH, HL, HH) stacking: a horizontal edge image puts its
        energy into the vertical-high band (LH)."""
        img = np.zeros((32, 32))
        img[16:, :] = 1.0  # horizontal step edge -> vertical frequency
        pyr = Dwt2D(levels=1).forward(img)
        lh, hl, hh = pyr.details[0]
        assert np.sum(lh ** 2) > 10 * np.sum(hl ** 2)
        assert np.sum(lh ** 2) > 10 * np.sum(hh ** 2)


class TestMosaic:
    def test_mosaic_shape(self, rng):
        pyr = Dwt2D(levels=3).forward(rng.standard_normal((64, 64)))
        assert subband_mosaic(pyr).shape == (64, 64)

    def test_mosaic_energy_matches_pyramid(self, rng):
        pyr = Dwt2D(levels=2).forward(rng.standard_normal((32, 32)))
        mosaic = subband_mosaic(pyr)
        total = float(np.sum(pyr.lowpass ** 2)) + sum(
            float(np.sum(d ** 2)) for d in pyr.details)
        assert np.isclose(float(np.sum(mosaic ** 2)), total)

    def test_mosaic_lowpass_top_left(self, rng):
        pyr = Dwt2D(levels=2).forward(rng.standard_normal((32, 32)) + 10.0)
        mosaic = subband_mosaic(pyr)
        assert np.allclose(mosaic[:8, :8], pyr.lowpass)
