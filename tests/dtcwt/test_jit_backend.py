"""JitBackend: bitwise parity with the reference, pooling, fallback.

The compiled backend's whole contract is *bitwise* equality with
:class:`NumpyBackend` at the same dtype — not closeness — because the
halo-extension formulation replays the reference's per-element IEEE
operation sequence.  These tests pin that contract across all four
primitives, both dtypes, arbitrary leading batch axes and every
filtered axis, plus the scratch-pool steady state and the
Numba-availability switches.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.dtcwt.backend import NumpyBackend, ScratchPool
from repro.dtcwt.coeffs import dtcwt_banks
from repro.dtcwt.jit_backend import NUMBA_AVAILABLE, JitBackend
from repro.dtcwt.transform2d import Dtcwt2D

SHAPES = [(16,), (12, 16), (3, 12, 16), (2, 3, 10, 8)]


@pytest.fixture
def banks():
    return dtcwt_banks()


def _primitive_outputs(backend, x, banks, axis):
    """All four primitives' outputs on matching inputs."""
    lvl, q = banks.level1, banks.qshift
    lo_u, hi_u = backend.analysis_u(x, lvl.h0, lvl.c_h0,
                                    lvl.h1, lvl.c_h1, axis)
    syn_u = backend.synthesis_u(lo_u, hi_u, lvl.g0, lvl.c_g0,
                                lvl.g1, lvl.c_g1, axis)
    lo_d, hi_d = backend.analysis_d(x, q.h0a, q.h1a, axis)
    syn_d = backend.synthesis_d(lo_d, hi_d, q.h0a, q.h1a, axis)
    return lo_u, hi_u, syn_u, lo_d, hi_d, syn_d


class TestBitwiseParity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", SHAPES)
    def test_all_primitives_all_axes(self, rng, banks, dtype, shape):
        x = rng.standard_normal(shape)
        ref = NumpyBackend(dtype=dtype)
        jit = JitBackend(dtype=dtype)
        for axis in range(len(shape)):
            if x.shape[axis] % 2:
                continue  # decimated pair needs an even axis
            for a, b in zip(_primitive_outputs(ref, x, banks, axis),
                            _primitive_outputs(jit, x, banks, axis)):
                assert a.dtype == b.dtype == dtype
                # array_equal + signbit: -0.0 must survive (the
                # zero-stuffed synthesis keeps zero data terms)
                assert np.array_equal(a, b)
                assert np.array_equal(np.signbit(a), np.signbit(b))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_full_transform_roundtrip(self, rng, banks, dtype):
        img = rng.standard_normal((40, 48)) * 64.0
        ref = Dtcwt2D(levels=3, banks=banks,
                      backend=NumpyBackend(dtype=dtype))
        jit = Dtcwt2D(levels=3, banks=banks,
                      backend=JitBackend(dtype=dtype))
        pr = ref.forward(img)
        pj = jit.forward(img)
        assert np.array_equal(pr.lowpass, pj.lowpass)
        for hr, hj in zip(pr.highpasses, pj.highpasses):
            assert np.array_equal(hr, hj)
        assert np.array_equal(ref.inverse(pr), jit.inverse(pj))

    def test_negative_axis(self, rng, banks):
        x = rng.standard_normal((6, 16))
        ref = NumpyBackend(dtype=np.float32)
        jit = JitBackend(dtype=np.float32)
        for a, b in zip(_primitive_outputs(ref, x, banks, -1),
                        _primitive_outputs(jit, x, banks, -1)):
            assert np.array_equal(a, b)


class TestScratchSteadyState:
    def test_pool_stops_growing(self, rng, banks):
        """Steady state must allocate only outputs: the pooled buffer
        count stabilizes after the first call at each shape."""
        jit = JitBackend(dtype=np.float32)
        x = rng.standard_normal((4, 16, 20))
        for axis in (1, 2):
            _primitive_outputs(jit, x, banks, axis)
        settled = len(jit._pool)
        for _ in range(3):
            for axis in (1, 2):
                _primitive_outputs(jit, x, banks, axis)
        assert len(jit._pool) == settled

    def test_outputs_are_never_pooled(self, rng, banks):
        """Callers hold returned subbands across calls; a second call
        must not overwrite the first call's outputs."""
        jit = JitBackend(dtype=np.float64)
        q = banks.qshift
        x = rng.standard_normal((8, 16))
        lo1, hi1 = jit.analysis_d(x, q.h0a, q.h1a, axis=1)
        keep_lo, keep_hi = lo1.copy(), hi1.copy()
        jit.analysis_d(rng.standard_normal((8, 16)), q.h0a, q.h1a, axis=1)
        assert np.array_equal(lo1, keep_lo)
        assert np.array_equal(hi1, keep_hi)


class TestInputAliasingContract:
    """_x() may alias the caller's buffer at matching dtype; every
    primitive must leave its inputs bit-unchanged."""

    @pytest.mark.parametrize("make", [
        lambda dtype: NumpyBackend(dtype=dtype),
        lambda dtype: JitBackend(dtype=dtype),
    ])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_inputs_untouched(self, rng, banks, make, dtype):
        backend = make(dtype)
        x = rng.standard_normal((8, 16)).astype(dtype)
        snap = x.copy()
        lvl, q = banks.level1, banks.qshift
        lo, hi = backend.analysis_u(x, lvl.h0, lvl.c_h0,
                                    lvl.h1, lvl.c_h1, axis=1)
        lo_s, hi_s = lo.copy(), hi.copy()
        backend.synthesis_u(lo, hi, lvl.g0, lvl.c_g0,
                            lvl.g1, lvl.c_g1, axis=1)
        assert np.array_equal(lo, lo_s) and np.array_equal(hi, hi_s)
        lo_d, hi_d = backend.analysis_d(x, q.h0a, q.h1a, axis=1)
        lo_ds, hi_ds = lo_d.copy(), hi_d.copy()
        backend.synthesis_d(lo_d, hi_d, q.h0a, q.h1a, axis=1)
        assert np.array_equal(lo_d, lo_ds)
        assert np.array_equal(hi_d, hi_ds)
        assert np.array_equal(x, snap)
        assert x.dtype == dtype  # aliased, not up-cast in place


class TestScratchPool:
    def test_dtype_switch_drops_every_key(self):
        pool = ScratchPool()
        a64 = pool.take("a", (4, 4), np.float64)
        pool.take("b", (8,), np.float64)
        assert len(pool) == 2
        a32 = pool.take("a", (4, 4), np.float32)
        # the generation flipped: *both* float64 buffers are gone,
        # not just the re-requested key
        assert len(pool) == 1
        assert a32.dtype == np.float32
        assert a32 is not a64
        b32 = pool.take("b", (8,), np.float32)
        assert len(pool) == 2
        assert b32.dtype == np.float32

    def test_same_dtype_reuses_buffers(self):
        pool = ScratchPool()
        first = pool.take("k", (6, 6), np.float32)
        again = pool.take("k", (6, 6), np.float32)
        assert again is first

    def test_shape_change_reallocates_one_key(self):
        pool = ScratchPool()
        pool.take("k", (6, 6), np.float32)
        other = pool.take("other", (3,), np.float32)
        grown = pool.take("k", (12, 6), np.float32)
        assert grown.shape == (12, 6)
        assert pool.take("other", (3,), np.float32) is other

    def test_clear_resets_dtype_generation(self):
        pool = ScratchPool()
        pool.take("k", (4,), np.float64)
        pool.clear()
        assert len(pool) == 0
        assert pool.nbytes == 0
        buf = pool.take("k", (4,), np.float32)
        assert buf.dtype == np.float32

    def test_nbytes_tracks_contents(self):
        pool = ScratchPool()
        pool.take("k", (4,), np.float64)
        assert pool.nbytes == 32


class TestNumbaSwitches:
    def test_forced_fallback_matches(self, rng, banks):
        """compiled=False pins the NumPy path regardless of install."""
        jit = JitBackend(dtype=np.float32, compiled=False)
        assert jit.compiled is False
        ref = NumpyBackend(dtype=np.float32)
        x = rng.standard_normal((4, 16))
        for a, b in zip(_primitive_outputs(ref, x, banks, 1),
                        _primitive_outputs(jit, x, banks, 1)):
            assert np.array_equal(a, b)

    def test_auto_tracks_availability(self):
        assert JitBackend().compiled is NUMBA_AVAILABLE

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_compiled_true_requires_numba(self):
        with pytest.raises(RuntimeError, match="numba"):
            JitBackend(compiled=True)

    def test_env_kill_switch_forces_fallback(self):
        """REPRO_NO_NUMBA=1 must disable the compiled path at import
        (checked in a subprocess: the flag is read once, at import)."""
        env = dict(os.environ, REPRO_NO_NUMBA="1",
                   PYTHONPATH=os.pathsep.join(sys.path))
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.dtcwt.jit_backend import NUMBA_AVAILABLE, "
             "JitBackend; print(NUMBA_AVAILABLE, JitBackend().compiled)"],
            env=env, capture_output=True, text=True, check=True)
        assert out.stdout.split() == ["False", "False"]
