"""Signal helpers: circular convolution algebra and its adjoints."""

import numpy as np
import pytest

from repro.dtcwt import util
from repro.errors import TransformError


class TestCconv:
    def test_identity_filter(self, rng):
        x = rng.standard_normal(32)
        out = util.cconv(x, np.array([1.0]), center=0, axis=0)
        assert np.allclose(out, x)

    def test_delay_is_circular(self, rng):
        x = rng.standard_normal(16)
        # filter = delta at index 1, center 0 -> circular shift by 1
        out = util.cconv(x, np.array([0.0, 1.0]), center=0, axis=0)
        assert np.allclose(out, np.roll(x, 1))

    def test_centered_symmetric_is_zero_phase(self, rng):
        x = rng.standard_normal(64)
        taps = np.array([0.25, 0.5, 0.25])
        out = util.cconv(x, taps, center=1, axis=0)
        expected = 0.25 * np.roll(x, -1) + 0.5 * x + 0.25 * np.roll(x, 1)
        assert np.allclose(out, expected)

    def test_2d_axis_selection(self, rng):
        x = rng.standard_normal((8, 12))
        taps = np.array([0.5, 0.5])
        rows = util.cconv(x, taps, center=0, axis=0)
        cols = util.cconv(x, taps, center=0, axis=1)
        assert not np.allclose(rows, cols)
        assert rows.shape == cols.shape == x.shape

    def test_matches_direct_summation(self, rng):
        x = rng.standard_normal(20)
        taps = rng.standard_normal(7)
        center = 3
        out = util.cconv(x, taps, center=center, axis=0)
        direct = np.array([
            sum(taps[k] * x[(n + center - k) % len(x)]
                for k in range(len(taps)))
            for n in range(len(x))
        ])
        assert np.allclose(out, direct)


class TestAdjointness:
    """ccorr_causal must be the exact transpose of cconv_causal."""

    def test_inner_product_identity(self, rng):
        x = rng.standard_normal(24)
        y = rng.standard_normal(24)
        taps = rng.standard_normal(9)
        lhs = np.dot(util.cconv_causal(x, taps, axis=0), y)
        rhs = np.dot(x, util.ccorr_causal(y, taps, axis=0))
        assert np.isclose(lhs, rhs)

    def test_up_down_sampling_adjoint(self, rng):
        x = rng.standard_normal(16)
        y = rng.standard_normal(8)
        lhs = np.dot(util.downsample2(x, 0, axis=0), y)
        rhs = np.dot(x, util.upsample2(y, 0, axis=0))
        assert np.isclose(lhs, rhs)


class TestSampling:
    def test_downsample_phases(self):
        x = np.arange(10)
        assert list(util.downsample2(x, 0, 0)) == [0, 2, 4, 6, 8]
        assert list(util.downsample2(x, 1, 0)) == [1, 3, 5, 7, 9]

    def test_upsample_inserts_zeros(self):
        x = np.array([1.0, 2.0])
        up = util.upsample2(x, 0, 0)
        assert list(up) == [1.0, 0.0, 2.0, 0.0]
        up1 = util.upsample2(x, 1, 0)
        assert list(up1) == [0.0, 1.0, 0.0, 2.0]

    def test_bad_phase_raises(self):
        with pytest.raises(TransformError):
            util.downsample2(np.arange(4), 2, 0)
        with pytest.raises(TransformError):
            util.upsample2(np.arange(4), -1, 0)


class TestPadding:
    def test_no_padding_needed(self, rng):
        img = rng.standard_normal((16, 24))
        padded, original = util.pad_to_multiple(img, 8)
        assert padded is img
        assert original == (16, 24)

    def test_pads_to_multiple(self, rng):
        img = rng.standard_normal((35, 35))
        padded, original = util.pad_to_multiple(img, 8)
        assert padded.shape == (40, 40)
        assert original == (35, 35)
        assert np.allclose(util.crop_to(padded, original), img)

    def test_padding_replicates_edges(self):
        img = np.arange(9.0).reshape(3, 3)
        padded, _ = util.pad_to_multiple(img, 4)
        assert padded.shape == (4, 4)
        assert np.allclose(padded[3, :3], img[2])
        assert np.allclose(padded[:3, 3], img[:, 2])


class TestValidation:
    def test_as_float_image_rejects_1d(self):
        with pytest.raises(TransformError):
            util.as_float_image(np.arange(8))

    def test_as_float_image_rejects_empty(self):
        with pytest.raises(TransformError):
            util.as_float_image(np.zeros((0, 4)))

    def test_as_float_image_converts(self):
        out = util.as_float_image(np.ones((2, 2), dtype=np.uint8))
        assert out.dtype == np.float64


class TestGroupDelay:
    def test_pure_delay(self):
        taps = np.zeros(8)
        taps[3] = 1.0
        omegas = np.linspace(0.1, 2.0, 20)
        delays = util.group_delay(taps, omegas)
        assert np.allclose(delays, 3.0, atol=1e-9)

    def test_symmetric_filter_half_delay(self):
        taps = np.array([0.5, 0.5])
        omegas = np.linspace(0.1, 2.0, 20)
        assert np.allclose(util.group_delay(taps, omegas), 0.5, atol=1e-9)


class TestOrthonormality:
    def test_haar_is_orthonormal(self):
        h = np.array([1.0, 1.0]) / np.sqrt(2.0)
        assert util.is_orthonormal_filter(h)

    def test_scaled_haar_is_not(self):
        assert not util.is_orthonormal_filter(np.array([1.0, 1.0]))
