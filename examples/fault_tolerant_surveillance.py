#!/usr/bin/env python3
"""Fault-tolerant surveillance: the system under degraded inputs.

Production hardening of the paper's demo: the thermal camera's BT.656
stream picks up bit errors and byte dropouts, the webcam occasionally
stalls, and midway through the run the thermal sensor dies completely.
The pipeline keeps producing frames; the BT.656 decoder resynchronizes
and counts errors; the quality monitor notices the dead sensor and
switches the output policy to visible passthrough.

Run:  python examples/fault_tolerant_surveillance.py
"""

import numpy as np

from repro.core.fusion import fuse_images
from repro.core.quality_monitor import QualityMonitor
from repro.video.bt656 import Bt656Decoder
from repro.video.faults import DropoutChannel, NoisyByteChannel, corrupt_stream
from repro.video.scene import SyntheticScene
from repro.video.thermal import ThermalCameraSimulator
from repro.video.webcam import WebcamSimulator


def main() -> None:
    scene = SyntheticScene(seed=99)
    webcam = WebcamSimulator(scene)
    thermal_cam = ThermalCameraSimulator(scene)
    decoder = Bt656Decoder(thermal_cam.bt656_config)
    noise = NoisyByteChannel(bit_error_rate=2e-5, seed=1)
    dropout = DropoutChannel(dropout_rate=0.002, burst_bytes=96, seed=2)
    monitor = QualityMonitor(warmup=3)

    print("frame | decode errs | thermal ok | action")
    print("-" * 48)
    last_thermal = None
    for frame_idx in range(14):
        visible = webcam.capture_gray().as_float()[::4, ::4]

        stream = corrupt_stream(thermal_cam.capture_bt656(), [noise, dropout])
        for decoded in decoder.push_bytes(stream):
            last_thermal = decoded[::4, ::8].astype(np.float64)
        if last_thermal is None:
            continue
        thermal = last_thermal

        if frame_idx >= 9:      # the sensor dies: flat frame
            thermal = np.full_like(thermal, 120.0)

        rows = min(visible.shape[0], thermal.shape[0]) // 8 * 8
        cols = min(visible.shape[1], thermal.shape[1]) // 8 * 8
        visible_c, thermal_c = visible[:rows, :cols], thermal[:rows, :cols]
        fused = fuse_images(visible_c, thermal_c, levels=2)
        reading = monitor.observe(visible_c, thermal_c, fused)

        errors = (decoder.stats.xy_errors + decoder.stats.corrected_xy
                  + decoder.stats.resyncs)
        print(f"{frame_idx:5d} | {errors:11d} | "
              f"{str(reading.thermal_healthy):>10} | {reading.action}")

    print(f"\nchannel stats: {noise.stats.bits_flipped} bits flipped, "
          f"{dropout.stats.bytes_dropped} bytes dropped "
          f"({dropout.stats.bursts} bursts)")
    print(f"monitor alarms: {monitor.alarms} frames flagged; "
          "policy switched to visible passthrough after the sensor died.")


if __name__ == "__main__":
    main()
