#!/usr/bin/env python3
"""Three-source fusion: visible + infrared + depth through one plan.

The paper fuses a visible/IR pair; the pipeline generalizes to any
number of co-registered sources.  This demo adds the synthetic scene's
depth modality as a third stream: the session lowers a three-forward
plan (``visible``, ``thermal``, ``source2`` feeding one ``fuse``
reduction), all three sources ride a single stacked DT-CWT forward per
frame, and the fused output is bitwise-identical across executors.

Run:  python examples/triple_fusion.py
"""

import numpy as np

from repro.session import FusionConfig, FusionSession, SyntheticSource

MODALITIES = ("visible", "thermal", "depth")


def main() -> None:
    config = FusionConfig(engine="neon", fusion_shape=(88, 72), levels=2,
                          seed=11, n_sources=3, quality_metrics=False)

    with FusionSession(config) as session:
        print(session.plan.describe())
        print()

        print("frame | engine |  model ms | sources | fused range")
        print("-" * 56)
        source = SyntheticSource(seed=11, modalities=MODALITIES)
        results = list(session.stream(source, limit=8))
        for result in results:
            lo, hi = int(result.pixels.min()), int(result.pixels.max())
            print(f"{result.index:5d} | {result.engine:>6} | "
                  f"{result.model_seconds * 1e3:9.3f} | "
                  f"{len(result.sources):7d} | [{lo:3d}, {hi:3d}]")
        report = session.report()

    print(f"\n{report.frames} frames fused from "
          f"{len(MODALITIES)} sources "
          f"({report.model_fps:.1f} modelled fps)")

    # the depth stream genuinely contributes: drop it and the output
    # changes, keep it and every executor agrees bit-for-bit
    pair_config = FusionConfig(engine="neon", fusion_shape=(88, 72),
                               levels=2, seed=11, quality_metrics=False)
    with FusionSession(pair_config) as session:
        pair = list(session.stream(SyntheticSource(seed=11), limit=1))[0]
    changed = not np.array_equal(pair.pixels, results[0].pixels)
    print(f"third source changes the fused output: {changed}")


if __name__ == "__main__":
    main()
