#!/usr/bin/env python3
"""A guided tour of the FPGA wavelet engine and its kernel driver.

Drives the hardware models at the register/buffer level, the way the
paper's user-space application talks to the real accelerator:

1. query the driver, mmap the kernel buffers, set offsets via ioctl;
2. load filter coefficients into the engine (command mode 1);
3. push one image row through the forward datapath (mode 2) and read
   the decimated low/high-pass outputs back;
4. inspect the PL cycle accounting and the Fig. 5 schedule;
5. print the engine's resource footprint (Table I).

Run:  python examples/hls_engine_tour.py
"""

import numpy as np

from repro.dtcwt import dtcwt_banks
from repro.hw import (
    EngineConfig,
    HlsWaveletEngine,
    PassCost,
    WaveletDriver,
    estimate_resources,
)
from repro.hw.driver import IOCTL_GET_PHYS_ADDR, IOCTL_SELECT_AREA


def main() -> None:
    driver = WaveletDriver()
    engine = HlsWaveletEngine()
    banks = dtcwt_banks(qshift_length=12)  # the paper's 12-tap engine

    print("== 1. driver surface ==")
    print(f"input buffer phys addr : 0x{driver.ioctl(IOCTL_GET_PHYS_ADDR, 0):08x}")
    print(f"output buffer phys addr: 0x{driver.ioctl(IOCTL_GET_PHYS_ADDR, 1):08x}")
    print(f"buffer geometry        : {driver.area_words} words x 2 areas "
          "(double buffering, Fig. 5)")
    user_view = driver.mmap("input")
    print(f"mmap'd view            : {user_view.shape[0]} words of float32\n")

    print("== 2. coefficient load (mode 1) ==")
    h0, h1 = banks.qshift.h0a, banks.qshift.h1a
    load_s = engine.load_coefficients(h0.astype(np.float32),
                                      h1.astype(np.float32))
    print(f"loaded {engine.loaded_taps}-tap q-shift pair in "
          f"{load_s * 1e9:.0f} ns of PL time\n")

    print("== 3. forward row (mode 2) ==")
    rng = np.random.default_rng(0)
    row = rng.standard_normal(88).astype(np.float32)
    taps = engine.loaded_taps
    halo = (np.arange((44 - 1) * 2 + taps) - (taps - 1)) % 88
    driver.ioctl(IOCTL_SELECT_AREA, 0)
    driver.write_line(row[halo])                     # user memcpy in
    lo, hi, seconds = engine.forward_line(row[halo], out_len=44, step=2)
    driver.store_result(np.concatenate([lo, hi]))    # hardware writes back
    result = driver.read_line(88)                    # user memcpy out
    print(f"88-px row -> 44 low + 44 high coefficients in "
          f"{seconds * 1e6:.2f} us of PL time "
          f"({seconds / engine.platform.pl_cycle_s:.0f} cycles)")
    print(f"first low-pass outputs : {np.round(result[:4], 4)}\n")

    print("== 4. Fig. 5 schedule ==")
    costs = [PassCost(ps_in_s=1.6e-6, ps_out_s=0.7e-6, hw_s=seconds,
                      cmd_s=26e-6) for _ in range(160)]
    serial = driver.schedule(costs, double_buffered=False)
    piped = driver.schedule(costs, double_buffered=True)
    print(f"160 rows, single buffered : {serial.total_s * 1e3:.2f} ms")
    print(f"160 rows, double buffered : {piped.total_s * 1e3:.2f} ms")
    print(f"command cost share        : "
          f"{100 * piped.command_s / piped.total_s:.0f} %  "
          "<- why small frames prefer NEON\n")

    print("== 5. resource footprint (Table I) ==")
    estimate = estimate_resources(EngineConfig(taps=12))
    util = estimate.utilization()
    print(f"registers: {estimate.registers:>6}  ({util['registers']:.0f} %)")
    print(f"LUTs     : {estimate.luts:>6}  ({util['luts']:.0f} %)")
    print(f"slices   : {estimate.slices:>6}  ({util['slices']:.0f} %)")
    print(f"BUFG     : {estimate.bufg:>6}  ({util['bufg']:.0f} %)")
    print(f"BRAM     : {estimate.bram_kbit:.0f} kbit (two 4096-word buffers)")


if __name__ == "__main__":
    main()
