#!/usr/bin/env python3
"""The production session: every extension of this library, one config.

Runs a :class:`repro.FusionSession` with everything switched on —
capture, rig calibration (registration), online adaptive engine
selection, temporal flicker suppression, quality monitoring and
telemetry — for a short surveillance run, then prints the report.
It also shows the streaming API: the same session fuses a few extra
frames from a plain :class:`SyntheticSource` afterwards.

Run:  python examples/advanced_session_demo.py
"""

from repro import FrameShape, FusionConfig, FusionSession, SyntheticSource


def main() -> None:
    session = FusionSession(FusionConfig(
        engine="online",              # measurement-driven per-frame choice
        fusion_shape=FrameShape(88, 72),
        levels=3,
        seed=2016,
        registration=True,
        temporal=True,
        monitor=True,
        target_fps=25.0,
        energy_budget_mj=10_000.0,    # a small battery's worth
        quality_metrics=False,
    ))
    report = session.run(12)

    print("=== advanced fusion session ===")
    print(f"frames fused      : {report.frames}")
    print("engine usage      : "
          + ", ".join(f"{k}:{v}" for k, v in
                      sorted(report.engine_usage.items())))
    print("output policy     : "
          + ", ".join(f"{k}:{v}" for k, v in sorted(report.actions.items())))
    print(f"quality (Q^AB/F)  : {report.mean_qabf:.3f}")
    print(f"monitor alarms    : {report.alarms}")
    print(f"rig shift applied : {report.registered_shift_px:.1f} px avg")
    print("telemetry         :")
    for key, value in report.telemetry.items():
        print(f"  {key:<20} {value:10.2f}")
    remaining = session.telemetry.frames_remaining()
    print(f"battery headroom  : ~{remaining} more frames on this budget")

    # the same session keeps streaming from any other source
    extra = list(session.stream(SyntheticSource(seed=2016), limit=3))
    engines = ", ".join(r.engine for r in extra)
    print(f"\nstreamed 3 more frames from a SyntheticSource on: {engines}")
    print(f"session lifetime  : {session.report().frames} frames total")
    print()
    print("After the probe frames the scheduler settles on the FPGA (the")
    print("right answer at 88x72) while the monitor keeps the rig honest —")
    print("the paper's adaptive conclusion as a running system.")


if __name__ == "__main__":
    main()
