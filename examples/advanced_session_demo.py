#!/usr/bin/env python3
"""The production session: every extension of this library, assembled.

Runs :class:`repro.system.AdvancedFusionSession` — capture, rig
calibration (registration), online adaptive engine selection, temporal
flicker suppression, quality monitoring and telemetry — for a short
surveillance run, then prints the session report.

Run:  python examples/advanced_session_demo.py
"""

from repro.system import AdvancedFusionSession
from repro.types import FrameShape
from repro.video import SyntheticScene


def main() -> None:
    session = AdvancedFusionSession(
        fusion_shape=FrameShape(88, 72),
        levels=3,
        scene=SyntheticScene(seed=2016),
        target_fps=25.0,
        energy_budget_mj=10_000.0,   # a small battery's worth
    )
    report = session.run(12)

    print("=== advanced fusion session ===")
    print(f"frames fused      : {report.frames}")
    print("engine usage      : "
          + ", ".join(f"{k}:{v}" for k, v in
                      sorted(report.engine_usage.items())))
    print("output policy     : "
          + ", ".join(f"{k}:{v}" for k, v in sorted(report.actions.items())))
    print(f"quality (Q^AB/F)  : {report.mean_qabf:.3f}")
    print(f"monitor alarms    : {report.alarms}")
    print(f"rig shift applied : {report.registered_shift_px:.1f} px avg")
    print("telemetry         :")
    for key, value in report.telemetry.items():
        print(f"  {key:<20} {value:10.2f}")
    remaining = session.telemetry.frames_remaining()
    print(f"battery headroom  : ~{remaining} more frames on this budget")
    print()
    print("After the probe frames the scheduler settles on the FPGA (the")
    print("right answer at 88x72) while the monitor keeps the rig honest —")
    print("the paper's adaptive conclusion as a running system.")


if __name__ == "__main__":
    main()
