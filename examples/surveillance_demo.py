#!/usr/bin/env python3
"""Surveillance demo: the complete Section VI system on every engine.

Runs the full capture chain — webcam simulator, thermal camera through
BT.656 decode + scaling + the handshaked FIFO — and fuses 10 frames at
the paper's 88x72 geometry on each execution configuration, reporting
the modelled frame rate and energy (the Fig. 9(b)/Fig. 10 quantities)
plus measured fusion quality.  Each run is one :class:`FusionSession`
with a different engine in its config.

Run:  python examples/surveillance_demo.py
"""

from repro import FrameShape, FusionConfig, FusionSession

FRAMES = 10
SHAPE = FrameShape(88, 72)
SEED = 2016


def main() -> None:
    print(f"fusing {FRAMES} frames at {SHAPE} on each configuration\n")
    header = (f"{'engine':<10} {'model fps':>10} {'mJ/frame':>10} "
              f"{'Q^AB/F':>8} {'FIFO drops':>11} {'decode errs':>12}")
    print(header)
    print("-" * len(header))

    for engine in ("arm", "neon", "fpga", "adaptive"):
        session = FusionSession(FusionConfig(
            engine=engine, fusion_shape=SHAPE, levels=3,
            seed=SEED,                    # identical input for all runs
        ))
        report = session.run(FRAMES)
        label = engine if engine != "adaptive" else \
            f"adaptive({report.engine_used})"
        print(f"{label:<10} {report.model_fps:>10.1f} "
              f"{report.millijoules_per_frame:>10.2f} "
              f"{report.quality['qabf']:>8.4f} "
              f"{report.fifo_dropped:>11} "
              f"{report.decode_errors:>12}")

    print("\nThe adaptive system matches the best static configuration —")
    print("at 88x72 that is ARM+FPGA, as the paper's Fig. 9/10 show.")


if __name__ == "__main__":
    main()
