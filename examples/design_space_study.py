#!/usr/bin/env python3
"""Design-space and operating-point study around the paper's hardware.

Before committing to the paper's engine (fully parallel 12-tap MAC
array at 100 MHz, PS at 533 MHz), an implementer would want to see the
neighbourhood:

1. the area/latency Pareto of folding the MAC array,
2. what each PS operating point does to time, power and energy,
3. whether the NEON-vs-FPGA crossover moves.

Run:  python examples/design_space_study.py
"""

from repro.core.adaptive import CostModelScheduler
from repro.hw.design_space import explore, pareto_frontier
from repro.hw.dvfs import (
    PS_OPERATING_POINTS,
    best_operating_point,
    scaled_calibration,
    scaled_power_model,
    sweep_operating_points,
)
from repro.hw.fpga import FpgaEngine
from repro.hw.neon import NeonEngine
from repro.hw.platform import ZynqPlatform
from repro.types import FrameShape

FULL = FrameShape(88, 72)


def pareto_study() -> None:
    print("1) Folding the MAC array (PL-side forward @88x72):")
    print(f"   {'unroll':>7} {'II':>3} {'ms':>6} {'slices':>7}  note")
    frontier = {id(e) for e in pareto_frontier(explore(FULL))}
    for e in explore(FULL):
        note = "paper's design" if e.point.unroll == 12 else \
            ("Pareto" if id(e) in frontier else "")
        print(f"   {e.point.unroll:>7} {e.point.initiation_interval:>3} "
              f"{e.seconds_per_frame * 1e3:>6.2f} {e.slices:>7}  {note}")
    print()


def dvfs_study() -> None:
    print("2) PS operating points (ms/frame, mJ/frame at 88x72):")
    results = sweep_operating_points(FULL)
    by_freq = {}
    for r in results:
        by_freq.setdefault(r.ps_hz, {})[r.engine] = r
    print(f"   {'MHz':>5} " + " ".join(f"{e:>16}" for e in
                                       ("arm", "neon", "fpga")))
    for ps_hz in sorted(by_freq):
        row = by_freq[ps_hz]
        cells = " ".join(
            f"{row[e].seconds_per_frame * 1e3:6.1f}/{row[e].millijoules_per_frame:7.1f}"
            for e in ("arm", "neon", "fpga"))
        marker = "  <- paper" if ps_hz == 533e6 else ""
        print(f"   {ps_hz / 1e6:>5.0f} {cells}{marker}")
    best = best_operating_point(results, "energy")
    print(f"   energy-optimal: {best.engine} at PS "
          f"{best.ps_hz / 1e6:.0f} MHz "
          f"({best.millijoules_per_frame:.1f} mJ/frame)\n")


def crossover_study() -> None:
    print("3) Crossover sensitivity to the PS operating point:")
    for ps_hz in sorted(PS_OPERATING_POINTS):
        cal = scaled_calibration(ps_hz)
        platform = ZynqPlatform(ps_clock_hz=ps_hz)
        neon = NeonEngine(platform, cal)
        fpga = FpgaEngine(platform, cal)
        crossover = next(
            (px for px in range(24, 96)
             if fpga.forward_stage_time(FrameShape(px, px))
             < neon.forward_stage_time(FrameShape(px, px))), None)
        print(f"   PS {ps_hz / 1e6:>4.0f} MHz -> forward crossover at "
              f"{crossover}x{crossover} px")
    print("\n   A faster PS accelerates the SIMD engine everywhere but only")
    print("   the control half of the FPGA path (the PL clock is fixed), so")
    print("   the crossover creeps UP with PS frequency — the adaptive")
    print("   threshold is a platform property, not a constant.")


def main() -> None:
    pareto_study()
    dvfs_study()
    crossover_study()


if __name__ == "__main__":
    main()
