#!/usr/bin/env python3
"""Fusion quality study: DT-CWT against the related-work baselines.

Reproduces the qualitative claim of the paper's introduction (wavelet
fusion beats pyramid schemes; DT-CWT beats the real DWT) on three
standard scenarios:

* multifocus fusion with a known ground truth,
* visible + thermal surveillance frames,
* robustness to 1-pixel source misregistration (shift invariance).

Run:  python examples/fusion_quality_study.py
"""

import numpy as np

from repro import fuse_images
from repro.baselines import fuse_average, fuse_dwt, fuse_laplacian, fuse_pca
from repro.core.metrics import entropy, petrovic_qabf, psnr, ssim
from repro.video import SyntheticScene

METHODS = {
    "DT-CWT (paper)": lambda a, b: fuse_images(a, b, levels=3),
    "DWT": fuse_dwt,
    "Laplacian pyr": fuse_laplacian,
    "PCA blend": fuse_pca,
    "averaging": fuse_average,
}


def blur(image: np.ndarray, passes: int = 6) -> np.ndarray:
    out = image.copy()
    for _ in range(passes):
        out = (out + np.roll(out, 1, 0) + np.roll(out, -1, 0)
               + np.roll(out, 1, 1) + np.roll(out, -1, 1)) / 5.0
    return out


def multifocus_study(visible: np.ndarray) -> None:
    soft = blur(visible)
    half = visible.shape[1] // 2
    left = visible.copy()
    left[:, half:] = soft[:, half:]     # right half out of focus
    right = visible.copy()
    right[:, :half] = soft[:, :half]    # left half out of focus

    print("1) Multifocus fusion (ground truth known)")
    print(f"   {'method':<16} {'PSNR dB':>8} {'SSIM':>7} {'Q^AB/F':>7}")
    for name, fuse in METHODS.items():
        fused = fuse(left, right)
        print(f"   {name:<16} {psnr(visible, fused):>8.2f} "
              f"{ssim(visible, fused):>7.4f} "
              f"{petrovic_qabf(left, right, fused):>7.4f}")
    print()


def surveillance_study(visible: np.ndarray, thermal: np.ndarray) -> None:
    print("2) Visible + thermal fusion (no-reference metrics)")
    print(f"   {'method':<16} {'Q^AB/F':>7} {'entropy':>8}")
    for name, fuse in METHODS.items():
        fused = fuse(visible, thermal)
        print(f"   {name:<16} {petrovic_qabf(visible, thermal, fused):>7.4f} "
              f"{entropy(fused):>8.3f}")
    print()


def misregistration_study(visible: np.ndarray, thermal: np.ndarray) -> None:
    shifted = np.roll(thermal, 1, axis=0)
    print("3) Sensitivity to 1-px misregistration (lower = more robust)")
    print(f"   {'method':<16} {'mean |delta|':>12}")
    for name, fuse in METHODS.items():
        delta = float(np.mean(np.abs(fuse(visible, shifted)
                                     - fuse(visible, thermal))))
        print(f"   {name:<16} {delta:>12.4f}")
    print()


def main() -> None:
    scene = SyntheticScene(width=128, height=96, seed=1)
    visible = scene.render_visible(0.0)
    thermal = scene.render_thermal(0.0)
    multifocus_study(visible)
    surveillance_study(visible, thermal)
    misregistration_study(visible, thermal)
    print("Expected ranking: DT-CWT leads the transform methods on PSNR/")
    print("SSIM and degrades most gracefully under misregistration — the")
    print("shift-invariance property that motivated the paper's algorithm.")


if __name__ == "__main__":
    main()
