#!/usr/bin/env python3
"""Quickstart: fuse one visible+thermal frame pair with the DT-CWT.

This is the smallest end-to-end use of the library:

1. render a synthetic surveillance scene into the two modalities,
2. fuse them through a :class:`FusionSession` (forward DT-CWT ->
   max-magnitude coefficient selection -> inverse DT-CWT on the
   configured engine),
3. score the result and save viewable PGM images.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import FrameShape, FusionConfig, FusionSession
from repro.cli import write_pgm
from repro.video import SyntheticScene


def main() -> None:
    # a shared world, rendered by two different sensors
    scene = SyntheticScene(width=176, height=144, seed=42)
    visible = scene.render_visible(t_s=0.0)   # textured, well lit
    thermal = scene.render_thermal(t_s=0.0)   # warm targets glow

    # one session, one fused pair (fused at the source geometry)
    session = FusionSession(FusionConfig(
        engine="neon", fusion_shape=FrameShape(176, 144), levels=3))
    result = session.process(visible, thermal)
    fused = result.frame.pixels.astype(float)

    print(f"fused frame: {fused.shape} on engine {result.engine} "
          f"({result.model_millijoules:.2f} mJ modelled)")
    # the session already scored the fusion (quality_metrics=True)
    for name, value in result.quality.items():
        print(f"  {name:<20} {value:8.3f}")

    out = Path("quickstart_out")
    out.mkdir(exist_ok=True)
    write_pgm(out / "visible.pgm", visible)
    write_pgm(out / "thermal.pgm", thermal)
    write_pgm(out / "fused.pgm", fused)
    print(f"wrote {out}/visible.pgm, thermal.pgm, fused.pgm")

    # sanity: the fused frame carries the thermal hot spot AND the
    # visible texture
    row, col = scene.hottest_position(0.0)
    print(f"hot target at ({row},{col}): "
          f"visible={visible[row, col]:.0f}, thermal={thermal[row, col]:.0f}, "
          f"fused={fused[row, col]:.0f}")


if __name__ == "__main__":
    main()
