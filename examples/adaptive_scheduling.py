#!/usr/bin/env python3
"""Adaptive engine selection: the paper's key finding, interactively.

Walks the frame-size axis and shows which engine the cost-model
scheduler picks for time and for energy, where the crossovers sit, the
per-level execution plans, and an online (measurement-driven) scheduler
adapting to a workload change — the paper's proposed future work.

Run:  python examples/adaptive_scheduling.py
"""

from repro import FrameShape
from repro.core.adaptive import (
    CostModelScheduler,
    OnlineScheduler,
    PerLevelScheduler,
)
from repro.types import PAPER_FRAME_SIZES


def sweep_decisions() -> None:
    time_sched = CostModelScheduler(objective="time")
    energy_sched = CostModelScheduler(objective="energy")
    print("Engine choice vs frame size (3 decomposition levels):")
    print(f"  {'size':>8} {'time-optimal':>13} {'energy-optimal':>15} "
          f"{'ms/frame':>9} {'mJ/frame':>9}")
    for px in (24, 32, 36, 38, 40, 44, 48, 64, 88, 128):
        shape = FrameShape(px, px)
        t_pick = time_sched.choose(shape)
        e_pick = energy_sched.choose(shape)
        print(f"  {str(shape):>8} {t_pick.engine.name:>13} "
              f"{e_pick.engine.name:>15} {t_pick.predicted_s * 1e3:>9.2f} "
              f"{e_pick.predicted_mj:>9.2f}")
    print()


def per_level_plans() -> None:
    planner = PerLevelScheduler()
    print("Per-level plans (extension beyond the paper):")
    for shape in PAPER_FRAME_SIZES:
        plan = planner.plan(shape, levels=3)
        print(f"  {str(shape):>8}: forward {'/'.join(plan.forward_assignment)}"
              f"  inverse {'/'.join(plan.inverse_assignment)}"
              f"  -> {plan.predicted_s * 1e3:.2f} ms/frame")
    print()


def online_adaptation() -> None:
    """Simulate the run-time scheduler with the workload switching from
    large frames (FPGA territory) to small ones (NEON territory)."""
    from repro.core.adaptive import default_engines
    engines = {e.name: e for e in default_engines()}
    scheduler = OnlineScheduler(probe_frames=2, reprobe_every=8)

    def run_phase(shape: FrameShape, frames: int) -> list:
        picks = []
        for _ in range(frames):
            engine = scheduler.next_engine()
            latency = engine.frame_time(shape, 3).total_s
            scheduler.observe(engine, latency)
            picks.append(engine.name)
        return picks

    print("Online scheduler (no model, pure measurement):")
    big = run_phase(FrameShape(88, 72), 20)
    print(f"  phase 1 (88x72): picks -> {' '.join(big)}")
    scheduler.reset()  # camera reconfigured to a small ROI
    small = run_phase(FrameShape(32, 24), 20)
    print(f"  phase 2 (32x24): picks -> {' '.join(small)}")
    print(f"  steady-state: {big[-1]} for 88x72, {small[-1]} for 32x24")
    print()


def main() -> None:
    sweep_decisions()
    per_level_plans()
    online_adaptation()
    print("Crossover summary: NEON below ~38x38, FPGA above; energy flips")
    print("slightly later because FPGA mode draws +19.2 mW (paper Sec. VII).")


if __name__ == "__main__":
    main()
