#!/usr/bin/env python3
"""Adversarial serving: fault injectors against a live fusion service.

The fault models from :mod:`repro.video.faults` — bursty byte
dropouts, bit noise, a stalling sensor — are pointed at a multi-tenant
:class:`~repro.serve.FusionService` under churn.  Three tenants share
one heterogeneous engine pool:

* ``steady``   — a healthy synthetic pair stream (the control);
* ``stalling`` — its webcam hiccups through a :class:`StallingCamera`,
  replaying the previous frame on every stall;
* ``lossy``    — its visible plane rides a :class:`DropoutChannel`
  whose connector "comes loose" mid-run, killing the stream.

The service keeps the failure isolated: the lossy tenant retires as
``failed`` with the channel's exact loss ledger in its error, while
the other tenants complete every frame — and ``steady`` is
bitwise-identical to the same stream fused alone.

Run:  python examples/adversarial_serving.py
"""

import numpy as np

from repro.serve import FusionService
from repro.session import (FramePair, FrameSource, FusionConfig,
                           FusionSession, SyntheticSource)
from repro.types import FrameShape
from repro.video.faults import DropoutChannel, StallingCamera
from repro.video.scene import SyntheticScene
from repro.video.webcam import WebcamSimulator

SHAPE = FrameShape(32, 24)
FRAMES = 8


def config(**overrides):
    defaults = dict(engine="neon", fusion_shape=SHAPE, levels=2, seed=5,
                    quality_metrics=False, keep_records=True)
    defaults.update(overrides)
    return FusionConfig(**defaults)


class _GrayCapture:
    """Adapts the webcam's grayscale tap to the ``capture()`` protocol
    the stall injector wraps."""

    def __init__(self, webcam: WebcamSimulator):
        self.webcam = webcam

    def capture(self):
        return self.webcam.capture_gray()


class StallingPairSource(FrameSource):
    """Synthetic pairs whose visible camera stalls every 3rd capture."""

    def __init__(self, seed: int):
        scene = SyntheticScene(width=96, height=80, seed=seed)
        self.camera = StallingCamera(_GrayCapture(WebcamSimulator(scene)),
                                     period=3)
        self.scene = scene

    def frames(self):
        for index in range(FRAMES):
            visible = self.camera.capture().as_float()
            thermal = self.scene.render_thermal(index / 25.0)
            yield FramePair(visible=visible, thermal=thermal,
                            timestamp_s=index / 25.0, index=index)


class LossyCableSource(FrameSource):
    """Pairs whose visible plane crosses a byte channel that starts
    dropping 90% in 64-byte bursts at frame 3 (a loose connector):
    the short read is detected and raised, deterministically."""

    def __init__(self):
        self.channel = DropoutChannel(dropout_rate=0.9, burst_bytes=64,
                                      seed=7)

    def frames(self):
        from repro.errors import VideoError
        for index in range(FRAMES):
            visible = np.full(SHAPE.array_shape, 10.0 + index)
            if index >= 3:
                data = visible.tobytes()
                received = self.channel.transmit(data)
                if len(received) != len(data):
                    stats = self.channel.stats
                    raise VideoError(
                        f"frame {index}: channel dropped "
                        f"{stats.bytes_dropped}/{stats.bytes_seen} "
                        f"bytes over {stats.bursts} bursts")
            yield FramePair(visible=visible,
                            thermal=np.full(SHAPE.array_shape,
                                            200.0 - index),
                            timestamp_s=index / 25.0, index=index)


def main() -> None:
    service = FusionService(pool={"arm": 1, "neon": 1, "fpga": 2},
                            live=True)
    service.add_stream("steady", config=config(),
                       source=SyntheticSource(seed=3), frames=FRAMES)
    stalling_source = StallingPairSource(seed=4)
    service.add_stream("stalling", config=config(engine="arm"),
                       source=stalling_source, frames=FRAMES)
    service.start()
    # churn while the faults play out: a guest attaches mid-run on the
    # FPGA lane, then the lossy tenant joins and dies
    service.attach("guest", config=config(engine="fpga"),
                   source=SyntheticSource(seed=9))
    service.attach("lossy", config=config(), source=LossyCableSource(),
                   frames=FRAMES)
    service.detach("guest", timeout=30.0)
    report = service.wait()

    print("stream   | outcome   | frames | error")
    print("-" * 64)
    for name in ("steady", "stalling", "guest", "lossy"):
        outcome = report.scheduler[name]["outcome"]
        frames = report.streams[name].frames
        error = (report.errors.get(name) or "-")[:28]
        print(f"{name:8} | {outcome:9} | {frames:6d} | {error}")

    print(f"\nstalling camera replayed "
          f"{stalling_source.camera.stalls} frame(s); the stream "
          f"still delivered all {FRAMES}")

    with FusionSession(config()) as session:
        solo = list(session.stream(SyntheticSource(seed=3),
                                   limit=FRAMES))
    identical = all(
        np.array_equal(a.pixels, b.pixels)
        for a, b in zip(solo, report.streams["steady"].records))
    print(f"\nsteady tenant bitwise-identical to its solo run: "
          f"{identical}")
    print(f"lease ledger balanced: {report.ledger['balanced']}")
    assert identical and report.ledger["balanced"]
    assert report.scheduler["lossy"]["outcome"] == "errored"
    assert report.scheduler["stalling"]["outcome"] == "completed"


if __name__ == "__main__":
    main()
