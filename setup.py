"""Setup shim for environments without the `wheel` package.

The project is fully described in pyproject.toml; this file only
enables `python setup.py develop` / legacy editable installs where
build isolation is unavailable (offline CI).
"""

from setuptools import setup

setup()
